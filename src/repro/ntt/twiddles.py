"""Twiddle-factor tables and bit-reversal helpers.

The paper's kernels precompute all twiddle factors once per (n, q) pair
(the standard practice in FHE libraries); the SIMD NTT then loads per-stage
twiddle vectors from these tables inside the transform loop.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.arith.modular import inv_mod, pow_mod
from repro.arith.primes import root_of_unity
from repro.errors import NttParameterError
from repro.obs.hooks import record_twiddle_eviction
from repro.util.checks import check_power_of_two

#: Process-wide memoized tables, keyed by ``(n, q, root)`` with ``root=0``
#: meaning "found automatically". Tables are immutable after construction
#: (the per-stage caches only ever append), so sharing one instance across
#: every plan in the process is safe — and saves the root search plus the
#: O(n) power-table build at every construction site.
#:
#: The cache is LRU-bounded: a long-lived process cycling through many
#: ``(n, q)`` pairs (a service, a chaos run over random parameters) must
#: not grow it without limit, since each table holds O(n) precomputed
#: powers plus its per-stage twiddle lists. Capacity counts *distinct
#: tables* — alias keys (the ``root=0`` ↔ resolved-root pair) live and
#: die with their table — and evictions bump ``twiddle.evictions``.
_TABLE_CACHE: "OrderedDict[Tuple[int, int, int], TwiddleTable]" = OrderedDict()
_TABLE_LOCK = threading.Lock()

#: Default bound on distinct cached tables (see ``set_cache_capacity``).
DEFAULT_CACHE_CAPACITY = 64

_cache_capacity = DEFAULT_CACHE_CAPACITY


def _touch(table: "TwiddleTable") -> None:
    """Mark every key of ``table`` most-recently-used (lock held)."""
    for key in [k for k, t in _TABLE_CACHE.items() if t is table]:
        _TABLE_CACHE.move_to_end(key)


def _evict_over_capacity() -> None:
    """Evict least-recently-used tables past capacity (lock held)."""
    while True:
        distinct = {id(t) for t in _TABLE_CACHE.values()}
        if len(distinct) <= _cache_capacity:
            return
        victim = next(iter(_TABLE_CACHE.values()))
        for key in [k for k, t in _TABLE_CACHE.items() if t is victim]:
            del _TABLE_CACHE[key]
        record_twiddle_eviction()


def bit_reverse(index: int, bits: int) -> int:
    """Reverse the low ``bits`` bits of ``index``."""
    result = 0
    for _ in range(bits):
        result = (result << 1) | (index & 1)
        index >>= 1
    return result


def bit_reverse_permutation(values: List[int]) -> List[int]:
    """Permute a power-of-two-length list into bit-reversed order."""
    n = len(values)
    check_power_of_two(n, "length")
    bits = n.bit_length() - 1
    return [values[bit_reverse(i, bits)] for i in range(n)]


@dataclass
class TwiddleTable:
    """Precomputed twiddles for an ``n``-point NTT over ``Z_q``.

    Attributes:
        n: Transform size (power of two).
        q: Modulus (must satisfy ``n | q - 1``).
        root: A primitive ``n``-th root of unity (found automatically when
            not supplied).
    """

    n: int
    q: int
    root: int = 0
    _powers: List[int] = field(default_factory=list, repr=False)
    _inv_powers: List[int] = field(default_factory=list, repr=False)
    _pease_stages: Dict[bool, List[List[int]]] = field(
        default_factory=dict, repr=False
    )

    def __post_init__(self) -> None:
        check_power_of_two(self.n, "n")
        if self.n < 2:
            raise NttParameterError("NTT size must be at least 2")
        if (self.q - 1) % self.n:
            raise NttParameterError(
                f"modulus {self.q} does not support a {self.n}-point NTT "
                f"(n must divide q - 1)"
            )
        if not self.root:
            self.root = root_of_unity(self.n, self.q)
        if pow_mod(self.root, self.n, self.q) != 1 or (
            self.n > 1 and pow_mod(self.root, self.n // 2, self.q) == 1
        ):
            raise NttParameterError(
                f"{self.root} is not a primitive {self.n}-th root of unity "
                f"mod {self.q}"
            )
        inv_root = inv_mod(self.root, self.q)
        power = 1
        inv_power = 1
        for _ in range(self.n):
            self._powers.append(power)
            self._inv_powers.append(inv_power)
            power = power * self.root % self.q
            inv_power = inv_power * inv_root % self.q

    @classmethod
    def get(cls, n: int, q: int, root: int = 0) -> "TwiddleTable":
        """The process-wide memoized table for ``(n, q, root)``.

        Every NTT wrapper in the library constructs its table through
        this cache, so ten plans over the same ``(n, q)`` pair share one
        root search and one power table instead of recomputing them.
        A table built with ``root=0`` is additionally cached under the
        root it resolved to, so a later explicit request for that root
        hits the same instance.
        """
        key = (n, q, root or 0)
        with _TABLE_LOCK:
            table = _TABLE_CACHE.get(key)
            if table is not None:
                _touch(table)
                return table
        table = cls(n, q, root or 0)
        with _TABLE_LOCK:
            table = _TABLE_CACHE.setdefault(key, table)
            _TABLE_CACHE.setdefault((n, q, table.root), table)
            _touch(table)
            _evict_over_capacity()
        return table

    @classmethod
    def clear_cache(cls) -> None:
        """Drop all memoized tables (tests, long-lived processes)."""
        with _TABLE_LOCK:
            _TABLE_CACHE.clear()

    @classmethod
    def cache_size(cls) -> int:
        """Number of cached table entries (aliases included)."""
        with _TABLE_LOCK:
            return len(_TABLE_CACHE)

    @classmethod
    def cache_capacity(cls) -> int:
        """Maximum number of distinct tables the cache retains."""
        with _TABLE_LOCK:
            return _cache_capacity

    @classmethod
    def set_cache_capacity(cls, capacity: int) -> None:
        """Re-bound the cache (evicting LRU tables immediately if over).

        ``capacity`` counts distinct tables; the ``root=0`` alias of a
        table does not consume an extra slot.
        """
        if capacity < 1:
            raise NttParameterError(
                f"twiddle cache capacity must be >= 1, got {capacity}"
            )
        global _cache_capacity
        with _TABLE_LOCK:
            _cache_capacity = int(capacity)
            _evict_over_capacity()

    @property
    def stages(self) -> int:
        """Number of butterfly stages, ``log2 n``."""
        return self.n.bit_length() - 1

    @property
    def n_inverse(self) -> int:
        """``n^-1 mod q``, for inverse-NTT scaling."""
        return inv_mod(self.n % self.q, self.q)

    def power(self, exponent: int, inverse: bool = False) -> int:
        """``root^exponent`` (or ``root^-exponent``) from the table."""
        table = self._inv_powers if inverse else self._powers
        return table[exponent % self.n]

    def pease_stage_twiddles(self, stage: int, inverse: bool = False) -> List[int]:
        """Twiddles for one constant-geometry (Pease) stage.

        For stage ``s`` and butterfly index ``i`` (0 <= i < n/2) the
        exponent is ``bitrev(i mod 2^s, s) * (n >> (s + 1))`` - derived for
        the dataflow that reads ``x[i], x[i + n/2]`` and writes the pair to
        ``2i, 2i + 1``, producing bit-reversed output from natural input.
        Tables are laid out exactly in butterfly order so the SIMD kernels
        can load twiddle vectors with unit stride.
        """
        if not 0 <= stage < self.stages:
            raise NttParameterError(
                f"stage {stage} out of range for a {self.n}-point NTT"
            )
        cached = self._pease_stages.setdefault(inverse, [])
        while len(cached) <= stage:
            s = len(cached)
            half = self.n >> (s + 1)
            mask = (1 << s) - 1
            cached.append(
                [
                    self.power(bit_reverse(i & mask, s) * half, inverse)
                    for i in range(self.n // 2)
                ]
            )
        return cached[stage]

    def radix2_stage_twiddles(self, stage: int, inverse: bool = False) -> List[int]:
        """Twiddles for one iterative Cooley-Tukey (DIT) stage.

        Stage ``s`` (0-based) has butterfly groups of span ``2^s``; twiddle
        ``j`` within a group is ``root^(j * n / 2^(s+1))``.
        """
        if not 0 <= stage < self.stages:
            raise NttParameterError(
                f"stage {stage} out of range for a {self.n}-point NTT"
            )
        span = 1 << stage
        step = self.n >> (stage + 1)
        return [self.power(j * step, inverse) for j in range(span)]
