"""Generate the C artifact: kernels + the two-mode MQX header.

The paper ships its kernels as a C artifact compiled with ICX/AOCC
(Appendix A). This library's traces serve as the intermediate
representation Section 7 proposes, and this example lowers them back to
compilable C-with-intrinsics - including ``mqx.h`` with the paper's
functional-correctness flag (``-DMQX_EMULATE``).

Usage::

    python examples/codegen_artifact.py [output-dir]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro import default_modulus, get_backend
from repro.codegen import generate_kernel_source, generate_mqx_header


def main(output_dir: str = "generated") -> None:
    out = Path(output_dir)
    out.mkdir(parents=True, exist_ok=True)
    q = default_modulus()

    header = generate_mqx_header()
    (out / "mqx.h").write_text(header)
    print(f"mqx.h: {len(header.splitlines())} lines "
          f"(build with -DMQX_EMULATE for Table 2 semantics)")

    for backend_name in ("scalar", "avx2", "avx512", "mqx"):
        backend = get_backend(backend_name)
        for kernel in ("addmod", "submod", "mulmod", "butterfly"):
            source = generate_kernel_source(backend, kernel, q)
            path = out / f"{kernel}128_{backend_name}.c"
            path.write_text(source)
            print(f"{path}: {len(source.splitlines())} lines")

    # Show one kernel inline: the MQX modular addition (Listing 3's shape).
    print("\n--- addmod128_mqx.c ---")
    print((out / "addmod128_mqx.c").read_text())


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "generated")
