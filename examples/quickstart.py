"""Quickstart: 128-bit modular NTTs and BLAS on four ISA backends.

Runs a polynomial multiplication through the full paper pipeline (SIMD NTT
-> point-wise multiply -> inverse NTT) on every backend, checks the result
against schoolbook multiplication, and prints modeled runtimes for the
paper's testbed CPUs.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro import (
    BlasPlan,
    SimdNtt,
    default_modulus,
    estimate_ntt,
    get_backend,
    get_cpu,
    simd_ntt_polymul,
)
from repro.ntt.reference import schoolbook_polymul


def main() -> None:
    q = default_modulus()
    print(f"modulus q: {q} ({q.bit_length()} bits, the paper's 124-bit regime)")

    rng = random.Random(2025)
    n = 256

    # --- forward/inverse NTT on every backend --------------------------
    data = [rng.randrange(q) for _ in range(n)]
    for name in ("scalar", "avx2", "avx512", "mqx"):
        plan = SimdNtt(n, q, get_backend(name))
        spectrum = plan.forward(data)
        assert plan.inverse(spectrum) == data
        print(f"{name:>7}: {n}-point NTT roundtrip OK "
              f"(root of unity {plan.table.root % 10**6}... )")

    # --- polynomial multiplication via the convolution theorem ---------
    f = [rng.randrange(q) for _ in range(64)]
    g = [rng.randrange(q) for _ in range(64)]
    product = simd_ntt_polymul(f, g, q, get_backend("mqx"))
    assert product == schoolbook_polymul(f, g, q)
    print(f"polymul: degree-63 x degree-63 product verified against schoolbook")

    # --- BLAS operations ------------------------------------------------
    plan = BlasPlan(q, get_backend("avx512"))
    x = [rng.randrange(q) for _ in range(1024)]
    y = [rng.randrange(q) for _ in range(1024)]
    a = rng.randrange(q)
    assert plan.axpy(a, x, y) == [(a * xi + yi) % q for xi, yi in zip(x, y)]
    print("BLAS: 1024-element axpy verified")

    # --- modeled runtimes (the paper's Figure 5 numbers) ----------------
    print("\nmodeled NTT runtime, n = 2^14 (ns per butterfly):")
    for cpu_key in ("intel_xeon_8352y", "amd_epyc_9654"):
        cpu = get_cpu(cpu_key)
        row = f"  {cpu.name:18s}"
        for name in ("scalar", "avx2", "avx512", "mqx"):
            est = estimate_ntt(1 << 14, q, get_backend(name), cpu)
            row += f"  {name}={est.ns_per_butterfly:6.2f}"
        print(row)


if __name__ == "__main__":
    main()
