"""Quickstart: 128-bit modular NTTs and BLAS on four ISA backends.

Runs a polynomial multiplication through the full paper pipeline (SIMD NTT
-> point-wise multiply -> inverse NTT), checks the result against
schoolbook multiplication, and prints modeled runtimes for the paper's
testbed CPUs. Value computation runs on the vectorized fast engine
(``engine="fast"``, see docs/PERFORMANCE.md); the ISA-faithful backends
are cross-checked against it bit for bit, and the runtime estimates come
from the faithful instruction traces as always.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro import (
    BlasPlan,
    SimdNtt,
    default_modulus,
    estimate_ntt,
    get_backend,
    get_cpu,
    simd_ntt_polymul,
)
from repro.ntt.reference import schoolbook_polymul


def main() -> None:
    q = default_modulus()
    print(f"modulus q: {q} ({q.bit_length()} bits, the paper's 124-bit regime)")

    rng = random.Random(2025)
    n = 256

    # --- forward/inverse NTT on the fast engine -------------------------
    data = [rng.randrange(q) for _ in range(n)]
    fast = SimdNtt(n, q, get_backend("scalar"), engine="fast")
    spectrum = fast.forward(data)
    assert fast.inverse(spectrum) == data
    print(f"   fast: {n}-point NTT roundtrip OK "
          f"(root of unity {fast.table.root % 10**6}... )")

    # --- every ISA-faithful backend agrees with it bit for bit ----------
    small = data[:32]
    small_spectrum = SimdNtt(32, q, get_backend("scalar"), engine="fast").forward(small)
    for name in ("scalar", "avx2", "avx512", "mqx"):
        plan = SimdNtt(32, q, get_backend(name))
        assert plan.forward(small) == small_spectrum
        assert plan.inverse(small_spectrum) == small
        print(f"{name:>7}: 32-point NTT roundtrip OK, matches fast engine")

    # --- polynomial multiplication via the convolution theorem ---------
    f = [rng.randrange(q) for _ in range(64)]
    g = [rng.randrange(q) for _ in range(64)]
    product = simd_ntt_polymul(f, g, q, get_backend("mqx"), engine="fast")
    assert product == schoolbook_polymul(f, g, q)
    print(f"polymul: degree-63 x degree-63 product verified against schoolbook")

    # --- BLAS operations ------------------------------------------------
    plan = BlasPlan(q, get_backend("avx512"), engine="fast")
    x = [rng.randrange(q) for _ in range(1024)]
    y = [rng.randrange(q) for _ in range(1024)]
    a = rng.randrange(q)
    assert plan.axpy(a, x, y) == [(a * xi + yi) % q for xi, yi in zip(x, y)]
    print("BLAS: 1024-element axpy verified")

    # --- modeled runtimes (the paper's Figure 5 numbers) ----------------
    # Estimation always runs on the faithful engine: the instruction
    # trace is the model's input.
    print("\nmodeled NTT runtime, n = 2^14 (ns per butterfly):")
    for cpu_key in ("intel_xeon_8352y", "amd_epyc_9654"):
        cpu = get_cpu(cpu_key)
        row = f"  {cpu.name:18s}"
        for name in ("scalar", "avx2", "avx512", "mqx"):
            est = estimate_ntt(1 << 14, q, get_backend(name), cpu)
            row += f"  {name}={est.ns_per_butterfly:6.2f}"
        print(row)


if __name__ == "__main__":
    main()
