"""ISA-extension co-design study: the MQX/PISA workflow end to end.

Walks the paper's Section 4 methodology:

1. define candidate instructions (MQX and its Figure 6 variants),
2. project their performance through PISA proxy instructions,
3. validate PISA on existing instructions (Table 6),
4. inspect machine-code-level port pressure (Listing 4),
5. decide which components earn their hardware cost.

Usage::

    python examples/isa_extension_study.py
"""

from __future__ import annotations

from repro import default_modulus, estimate_ntt, get_backend, get_cpu
from repro.experiments.listing4 import reports
from repro.kernels.mqx_backend import FEATURE_PRESETS
from repro.pisa.proxy import MQX_PROXY_MAP
from repro.pisa.validation import max_absolute_error, validate_pisa


def main() -> None:
    q = default_modulus()
    cpu = get_cpu("amd_epyc_9654")

    # 1. The candidate extension and its proxy mapping (Table 3).
    print("MQX instructions and their PISA proxies:")
    for mnemonic, rule in MQX_PROXY_MAP.items():
        print(f"  {rule.target:26s} -> {rule.proxies[0]:22s} ({mnemonic})")

    # 2. Validate the projection methodology first (Table 6).
    cases = validate_pisa()
    print("\nPISA validation (relative error of projected NTT runtime):")
    for case in cases:
        print(
            f"  {case.cpu:18s} {case.target_intrinsic:24s} "
            f"{case.relative_error_pct:+6.2f}%"
        )
    print(f"  max |error| = {max_absolute_error(cases):.2f}% (< 8% bound)")

    # 3. Project each candidate configuration (Figure 6).
    base = estimate_ntt(1 << 14, q, get_backend("avx512"), cpu)
    print(f"\nprojected NTT runtime on {cpu.name}, n = 2^14:")
    print(f"  {'Base (AVX-512)':16s} {base.ns_per_butterfly:6.2f} ns/bf  1.00x")
    for label, features in sorted(FEATURE_PRESETS.items()):
        est = estimate_ntt(1 << 14, q, get_backend("mqx", features=features), cpu)
        print(
            f"  {label:16s} {est.ns_per_butterfly:6.2f} ns/bf  "
            f"{base.ns_per_butterfly / est.ns_per_butterfly:.2f}x"
        )

    # 4. Machine-code analysis of the modular-addition block (Listing 4).
    print("\n" + reports(q))

    # 5. The paper's conclusions, reproduced.
    full = estimate_ntt(1 << 14, q, get_backend("mqx"), cpu)
    mulhi = estimate_ntt(
        1 << 14, q, get_backend("mqx", features=FEATURE_PRESETS["+Mh,C"]), cpu
    )
    pred = estimate_ntt(
        1 << 14, q, get_backend("mqx", features=FEATURE_PRESETS["+M,C,P"]), cpu
    )
    print("\nco-design conclusions:")
    print(
        f"  multiply-high instead of full widening multiply costs only "
        f"{mulhi.ns / full.ns:.2f}x - a viable cheaper implementation"
    )
    print(
        f"  predicated execution gains just {full.ns / pred.ns:.2f}x - "
        f"not worth the extra hardware (the paper excludes it from MQX)"
    )


if __name__ == "__main__":
    main()
