"""FHE-style workload: RNS polynomial arithmetic with huge coefficients.

The paper's motivation (Section 1): FHE works on polynomials whose
coefficients exceed 1,000 bits, decomposed by the residue number system
(RNS) into machine-friendly residues. Recent work uses 128-bit residues to
cut the number of RNS limbs; this library provides exactly those kernels.

This example builds a ~1,100-bit coefficient space from nine 124-bit NTT
primes and works in the RLWE ring ``Z_Q[x]/(x^n + 1)`` via
:class:`repro.rns.RnsPolynomialRing`: additions, scalar multiplication and
a full ring multiplication (one negacyclic SIMD-NTT pipeline per prime),
all verified against exact big-integer arithmetic. It then sketches the
modeled runtime - the "batched independent NTTs" parallelism Section 6
leans on.

Usage::

    python examples/fhe_rns_pipeline.py
"""

from __future__ import annotations

import random

from repro import estimate_ntt, get_backend, get_cpu
from repro.multicore.model import BatchScalingModel
from repro.ntt.reference import negacyclic_schoolbook_polymul
from repro.rns import RnsBasis, RnsPolynomialRing

#: Ring dimension and RNS shape.
N = 64
PRIME_BITS = 124
NUM_PRIMES = 9


def main() -> None:
    basis = RnsBasis.generate(NUM_PRIMES, PRIME_BITS, 2 * N)
    print(basis)

    backend = get_backend("mqx")
    ring = RnsPolynomialRing(N, basis, backend, negacyclic=True)

    rng = random.Random(7)
    big_q = basis.modulus
    fc = [rng.randrange(big_q) for _ in range(N)]
    gc = [rng.randrange(big_q) for _ in range(N)]
    f, g = ring.encode(fc), ring.encode(gc)

    # Ring arithmetic, CRT-verified against exact big integers.
    total = ring.add(f, g)
    assert total.coefficients() == [(a + b) % big_q for a, b in zip(fc, gc)]

    scaled = ring.scalar_mul(3, f)
    assert scaled.coefficients() == [3 * c % big_q for c in fc]

    product = ring.mul(f, g)
    assert product.coefficients() == negacyclic_schoolbook_polymul(fc, gc, big_q)
    print(
        f"negacyclic product of degree-{N - 1} polynomials with "
        f"{big_q.bit_length()}-bit coefficients verified via CRT"
    )

    # One ring multiply = 3 independent NTTs per prime (Section 6's batch).
    print(f"independent NTTs per ring multiplication: {ring.ntt_count_per_mul}")

    cpu = get_cpu("amd_epyc_9654")
    est = estimate_ntt(1 << 14, basis.primes[0], backend, cpu)
    single_core_us = ring.ntt_count_per_mul * est.ns / 1000
    print(
        f"\nmodeled ciphertext multiply at n = 2^14: "
        f"{single_core_us:.0f} us on one {cpu.name} core (MQX)"
    )

    # Spread the batch over a big server with the contention model.
    target = get_cpu("amd_epyc_9965s")
    model = BatchScalingModel(target)
    mc = model.run(est, batch=ring.ntt_count_per_mul, cores=ring.ntt_count_per_mul)
    print(
        f"on {ring.ntt_count_per_mul} cores of {target.name}: "
        f"{mc.makespan_ns / 1000:.0f} us "
        f"({mc.speedup:.1f}x, {mc.bound}-bound) - near-linear, as the "
        f"paper's batching argument expects"
    )


if __name__ == "__main__":
    main()
