"""Roofline / speed-of-light analysis, including a custom CPU.

Reproduces the Section 6 methodology and the artifact's Section A.7
customization: scale single-core MQX results to whole server CPUs via
Equation 13, compare against the published accelerators, then register a
hypothetical CPU of your own and rerun the projection.

Usage::

    python examples/roofline_analysis.py
"""

from __future__ import annotations

from repro import default_modulus, estimate_ntt, get_backend, get_cpu
from repro.baselines.published import synthesize_published
from repro.machine.cpu import CpuSpec, register_cpu
from repro.roofline.compare import average_speedup, figure7_comparison
from repro.roofline.sol import default_sol_anchor, sol_runtime


def main() -> None:
    q = default_modulus()

    # --- Figure 7: MQX-SOL vs published accelerators --------------------
    for vendor, target in (("intel", "Intel Xeon 6980P"), ("amd", "AMD EPYC 9965S")):
        rows = figure7_comparison(vendor)
        print(f"MQX speed-of-light on {target}:")
        for design in ("RPU", "FPMM", "MoMA", "OpenFHE (32-core)"):
            speedup = average_speedup(rows, design)
            verdict = "faster" if speedup >= 1 else "slower"
            print(f"  vs {design:18s} {max(speedup, 1/speedup):8.2f}x {verdict}")
        print()

    # --- per-size detail on AMD -----------------------------------------
    published = synthesize_published(default_sol_anchor())
    rpu = published["rpu"]
    amd = get_cpu("amd_epyc_9654")
    target = get_cpu("amd_epyc_9965s")
    print("per-size MQX-SOL vs RPU (AMD):")
    print("  log2(n)   SOL us    RPU us   speedup")
    for logn in rpu.sizes:
        est = estimate_ntt(1 << logn, q, get_backend("mqx"), amd)
        sol = sol_runtime(est, target)
        print(
            f"  {logn:7d} {sol.sol_ns / 1000:8.3f} "
            f"{rpu.runtime(logn) / 1000:9.3f} {rpu.runtime(logn) / sol.sol_ns:8.2f}x"
        )

    # --- Section A.7: customize Equation 13 for your own CPU ------------
    custom = CpuSpec(
        key="hypothetical_avx512_cpu",
        name="Hypothetical 256-core AVX-512 CPU",
        microarch="zen4",
        cores=256,
        base_ghz=2.5,
        max_ghz=4.0,
        allcore_ghz=3.0,
        l1d_bytes=48 * 1024,
        l2_bytes_per_core=2 * 1024 * 1024,
        l3_bytes=512 * 1024 * 1024,
        memory="DDR5",
    )
    register_cpu(custom)
    est = estimate_ntt(1 << 14, q, get_backend("mqx"), amd)
    sol = sol_runtime(est, custom)
    print(
        f"\ncustom CPU ({custom.name}): 2^14 NTT SOL = "
        f"{sol.sol_ns / 1000:.3f} us "
        f"({rpu.runtime(14) / sol.sol_ns:.2f}x vs RPU)"
    )
    print(
        "edit the CpuSpec fields (cores, all-core boost) to match your "
        "machine - that is the artifact's Equation 13 customization"
    )


if __name__ == "__main__":
    main()
