"""Semantics tests for the AVX2 intrinsic simulator."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import IsaError
from repro.isa import avx2 as y
from repro.isa.trace import tracing
from repro.isa.types import Vec

MASK64 = (1 << 64) - 1
LANES = y.LANES

lane_values = st.lists(
    st.integers(min_value=0, max_value=MASK64), min_size=LANES, max_size=LANES
)


class TestArithmetic:
    @given(lane_values, lane_values)
    def test_add_sub(self, a, b):
        assert y.mm256_add_epi64(Vec(a), Vec(b)).to_list() == [
            (x + z) & MASK64 for x, z in zip(a, b)
        ]
        assert y.mm256_sub_epi64(Vec(a), Vec(b)).to_list() == [
            (x - z) & MASK64 for x, z in zip(a, b)
        ]

    def test_rejects_zmm_shape(self):
        with pytest.raises(IsaError):
            y.mm256_add_epi64(Vec([0] * 8), Vec([0] * 8))


class TestCompareEmulation:
    def test_signed_cmpgt(self):
        a = Vec([MASK64, 5, 0, 0])  # -1 signed in lane 0
        b = Vec([0, 3, 0, 0])
        out = y.mm256_cmpgt_epi64(a, b)
        assert out.to_list() == [0, MASK64, 0, 0]

    @given(lane_values, lane_values)
    def test_cmplt_epu64_unsigned_semantics(self, a, b):
        out = y.cmplt_epu64(Vec(a), Vec(b))
        assert out.to_list() == [
            MASK64 if x < z else 0 for x, z in zip(a, b)
        ]

    @given(lane_values, lane_values)
    def test_cmple_epu64(self, a, b):
        out = y.cmple_epu64(Vec(a), Vec(b))
        assert out.to_list() == [
            MASK64 if x <= z else 0 for x, z in zip(a, b)
        ]

    def test_cmplt_costs_three_instructions(self):
        with tracing() as t:
            y.cmplt_epu64(Vec([1] * 4), Vec([2] * 4))
        assert [e.op for e in t] == ["vpxor_ymm", "vpxor_ymm", "vpcmpgtq_ymm"]

    def test_cmpeq(self):
        out = y.mm256_cmpeq_epi64(Vec([1, 2, 3, 4]), Vec([1, 0, 3, 0]))
        assert out.to_list() == [MASK64, 0, MASK64, 0]


class TestMaskVectorIdioms:
    def test_add_with_mask_carry_increments_where_set(self):
        mask = Vec([MASK64, 0, MASK64, 0])
        out = y.add_with_mask_carry(Vec([10, 10, MASK64, 10]), mask)
        assert out.to_list() == [11, 10, 0, 10]

    def test_blendv_uses_lane_msb(self):
        a, b = Vec([0] * 4), Vec([7] * 4)
        mask = Vec([MASK64, 0, 1 << 63, 5])
        assert y.mm256_blendv_epi8(a, b, mask).to_list() == [7, 0, 7, 0]

    def test_andnot(self):
        out = y.mm256_andnot_si256(Vec([0b1100] * 4), Vec([0b1010] * 4))
        assert out.to_list() == [0b0010] * 4


class TestMultiply:
    @given(lane_values, lane_values)
    def test_mul_epu32(self, a, b):
        mask32 = (1 << 32) - 1
        out = y.mm256_mul_epu32(Vec(a), Vec(b))
        assert out.to_list() == [
            (x & mask32) * (z & mask32) for x, z in zip(a, b)
        ]

    @given(lane_values, lane_values)
    def test_mullo_epi32_two_products_per_lane(self, a, b):
        mask32 = (1 << 32) - 1
        out = y.mm256_mullo_epi32(Vec(a), Vec(b))
        for i in range(LANES):
            lo = ((a[i] & mask32) * (b[i] & mask32)) & mask32
            hi = ((a[i] >> 32) * (b[i] >> 32)) & mask32
            assert out.lane(i) == (hi << 32) | lo

    @given(lane_values, lane_values)
    def test_wide_mul_emulation_exact(self, a, b):
        hi, lo = y.mul64_wide_emulated(Vec(a), Vec(b))
        for i in range(LANES):
            assert (hi.lane(i) << 64) | lo.lane(i) == a[i] * b[i]

    def test_wide_mul_all_ones_edge(self):
        ones = Vec([MASK64] * 4)
        hi, lo = y.mul64_wide_emulated(ones, ones)
        product = MASK64 * MASK64
        assert hi.to_list() == [product >> 64] * 4
        assert lo.to_list() == [product & MASK64] * 4


class TestPermutes:
    def test_unpacklo_hi(self):
        a, b = Vec([0, 1, 2, 3]), Vec([10, 11, 12, 13])
        assert y.mm256_unpacklo_epi64(a, b).to_list() == [0, 10, 2, 12]
        assert y.mm256_unpackhi_epi64(a, b).to_list() == [1, 11, 3, 13]

    def test_permute2x128(self):
        a, b = Vec([0, 1, 2, 3]), Vec([10, 11, 12, 13])
        assert y.mm256_permute2x128_si256(a, b, 0x20).to_list() == [0, 1, 10, 11]
        assert y.mm256_permute2x128_si256(a, b, 0x31).to_list() == [2, 3, 12, 13]

    def test_permute4x64(self):
        a = Vec([10, 20, 30, 40])
        assert y.mm256_permute4x64_epi64(a, 0b00_01_10_11).to_list() == [
            40, 30, 20, 10,
        ]


class TestShiftsAndMemory:
    @given(lane_values, st.integers(min_value=0, max_value=64))
    def test_shifts(self, a, amount):
        va = Vec(a)
        assert y.mm256_srli_epi64(va, amount).to_list() == [
            x >> amount if amount < 64 else 0 for x in a
        ]
        assert y.mm256_slli_epi64(va, amount).to_list() == [
            (x << amount) & MASK64 if amount < 64 else 0 for x in a
        ]

    def test_load_store_tags(self):
        with tracing() as t:
            x = y.mm256_load_si256([1, 2, 3, 4])
            y.mm256_store_si256(x)
        assert t.memory_ops() == (1, 1)

    def test_set1_hoisted_default(self):
        with tracing() as t:
            y.mm256_set1_epi64x(5)
        assert len(t) == 0
