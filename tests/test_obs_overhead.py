"""Overhead guard: instrumentation must never slow the emit hot path.

The observability layer's contract is that its permanent call sites cost
nothing measurable while disabled. These microbenchmarks compare the
library's :func:`repro.isa.trace.emit` paths against *control* functions
that replicate the pre-observability (seed) implementation line for line,
and assert the library is within 5% of the control. If a future change
sneaks per-emit work into the hot path (an attribute lookup, a hook call,
a flag check inside ``Tracer.emit``), this guard trips.

Identical workloads still jitter a little on shared CI hardware, so each
comparison takes the best of several timing repeats and retries the whole
measurement a few times — it fails only if *every* attempt exceeds the
budget, which noise alone essentially never produces.
"""

import time

import pytest

from repro.isa.trace import Tracer, emit, tracing
from repro.obs import session as obs_session

#: Maximum allowed slowdown of the instrumented library vs the control.
BUDGET = 1.05

#: emit() calls per timed sample.
CALLS = 20_000

_ATTEMPTS = 8
_REPEATS = 5


# -- control: the seed implementation of the emit fast paths, verbatim --

_CONTROL_ACTIVE = []


def _control_current():
    return _CONTROL_ACTIVE[-1] if _CONTROL_ACTIVE else None


def _control_ids(objs):
    out = []
    for obj in objs:
        vid = getattr(obj, "vid", None)
        out.append(int(vid) if vid is not None else int(obj))
    return tuple(out)


def _control_emit(op, dests=(), srcs=(), tag="", imm=None):
    tracer = _control_current()
    if tracer is None:
        return
    tracer.emit(op, _control_ids(dests), _control_ids(srcs), tag, imm)


def _best_of(fn, repeats=_REPEATS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _assert_within_budget(run_library, run_control):
    ratios = []
    for _ in range(_ATTEMPTS):
        library = _best_of(run_library)
        control = _best_of(run_control)
        ratio = library / control
        ratios.append(ratio)
        if ratio <= BUDGET:
            return
    pytest.fail(
        f"emit hot path exceeded the {BUDGET:.2f}x overhead budget in all "
        f"{_ATTEMPTS} attempts; library/control ratios: "
        + ", ".join(f"{r:.3f}" for r in ratios)
    )


@pytest.fixture(autouse=True)
def _obs_disabled():
    obs_session.disable()
    yield
    obs_session.disable()


class TestEmitOverhead:
    def test_disabled_tracer_no_op_path(self):
        """No active tracer, observability off: emit must stay a no-op."""

        def run_library():
            e = emit
            for _ in range(CALLS):
                e("add64")

        def run_control():
            e = _control_emit
            for _ in range(CALLS):
                e("add64")

        _assert_within_budget(run_library, run_control)

    def test_active_tracer_capture_path(self):
        """With a tracer active (obs still off), capture cost is unchanged."""

        def run_library():
            with tracing():
                e = emit
                for _ in range(CALLS):
                    e("add64", (), (1, 2))

        def run_control():
            tracer = Tracer()
            _CONTROL_ACTIVE.append(tracer)
            try:
                e = _control_emit
                for _ in range(CALLS):
                    e("add64", (), (1, 2))
            finally:
                _CONTROL_ACTIVE.pop()

        _assert_within_budget(run_library, run_control)

    def test_disabled_span_overhead_is_bounded(self):
        """A disabled span() is one global read; keep it microseconds-cheap.

        Absolute bound (not a ratio): 2000 disabled spans must cost well
        under a millisecond-scale budget even on slow CI machines.
        """
        from repro.obs.spans import span

        def run():
            for _ in range(2_000):
                with span("noop"):
                    pass

        best = _best_of(run)
        assert best < 0.05, f"2000 disabled spans took {best * 1e3:.1f} ms"


class TestFlightOverhead:
    """The always-on flight recorder must respect the same invariants."""

    SPAN_CALLS = 5_000

    def test_attached_recorder_span_path_within_budget(self):
        """Spans with a recorder attached vs a plain observing session.

        The recorder's feed is one deque.append per span close plus a
        pending-incident check; that must fit in the 5% budget relative
        to an identically observed session without a recorder.
        """
        from repro.obs.flight import FlightRecorder
        from repro.obs.session import observing
        from repro.obs.spans import span

        def run_library():
            with observing() as session:
                FlightRecorder(capacity=1024).attach(session)
                for _ in range(self.SPAN_CALLS):
                    with span("work"):
                        pass

        def run_control():
            with observing():
                for _ in range(self.SPAN_CALLS):
                    with span("work"):
                        pass

        _assert_within_budget(run_library, run_control)

    def test_disabled_hooks_allocate_nothing(self):
        """Obs off: the serve/flight hook call sites must not allocate.

        tracemalloc over a warmed loop of the permanent call sites —
        record_serve_shed (flight-feeding), record_serve_latency_slices
        (the per-request decomposition), and a disabled span — must show
        zero allocations, which is what "no-op when disabled" means.
        """
        import tracemalloc

        from repro.obs.hooks import (
            record_serve_latency_slices,
            record_serve_shed,
        )
        from repro.obs.spans import span

        def hot_loop():
            for _ in range(200):
                record_serve_shed("queue_full")
                record_serve_latency_slices(
                    "polymul", "t0", 0.006, 0.001, 0.002, 0.003
                )
                with span("noop"):
                    pass

        hot_loop()  # warm caches/imports before measuring
        tracemalloc.start()
        try:
            snap_before = tracemalloc.take_snapshot()
            hot_loop()
            snap_after = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        here = __file__
        grown = [
            diff
            for diff in snap_after.compare_to(snap_before, "lineno")
            if diff.size_diff > 0
            and any(frame.filename == here for frame in diff.traceback)
        ]
        assert not grown, (
            "disabled hook loop allocated: "
            + "; ".join(str(d) for d in grown[:5])
        )
