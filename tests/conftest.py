"""Shared fixtures: moduli, backends, deterministic RNG."""

from __future__ import annotations

import random

import pytest

from repro.arith.primes import default_modulus, find_ntt_prime
from repro.kernels import get_backend

#: A small NTT-friendly prime for cheap exhaustive-ish tests.
SMALL_Q = find_ntt_prime(20, 1 << 8)

#: A mid-size prime exercising sub-64-bit high words.
MID_Q = find_ntt_prime(60, 1 << 10)

#: The library default: the largest 124-bit NTT prime (paper's regime).
BIG_Q = default_modulus()

ALL_BACKEND_NAMES = ("scalar", "avx2", "avx512", "mqx")


@pytest.fixture
def rng():
    """Deterministic RNG; reseeded per test."""
    return random.Random(0xD1CE)


@pytest.fixture(params=ALL_BACKEND_NAMES)
def backend(request):
    """Each of the four paper backends."""
    return get_backend(request.param)


@pytest.fixture(params=[SMALL_Q, MID_Q, BIG_Q], ids=["q20", "q60", "q124"])
def modulus(request):
    """Moduli spanning the supported width range."""
    return request.param


def random_residues(rng: random.Random, q: int, count: int):
    """Uniform residues in [0, q)."""
    return [rng.randrange(q) for _ in range(count)]
