"""Unit and property tests for repro.util.bits."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util import bits

U64 = st.integers(min_value=0, max_value=(1 << 64) - 1)
U128 = st.integers(min_value=0, max_value=(1 << 128) - 1)


class TestWrapping:
    def test_wrap64_masks_to_64_bits(self):
        assert bits.wrap64((1 << 64) + 5) == 5

    def test_wrap128_masks_to_128_bits(self):
        assert bits.wrap128((1 << 128) + 7) == 7

    @given(U128)
    def test_wrap64_idempotent(self, x):
        assert bits.wrap64(bits.wrap64(x)) == bits.wrap64(x)


class TestHiLo:
    @given(U128)
    def test_make128_roundtrip(self, x):
        assert bits.make128(bits.hi64(x), bits.lo64(x)) == x

    def test_lo64_of_small_value(self):
        assert bits.lo64(42) == 42

    def test_hi64_of_small_value(self):
        assert bits.hi64(42) == 0

    def test_hi64_extracts_upper_word(self):
        assert bits.hi64((3 << 64) | 9) == 3

    def test_make128_masks_inputs(self):
        assert bits.make128(1 << 65, 1 << 65) == 0


class TestSplitJoin:
    @given(U128, st.integers(min_value=2, max_value=4))
    def test_split_join_roundtrip(self, x, count):
        assert bits.join_words(bits.split_words(x, count)) == x

    def test_split_rejects_negative(self):
        with pytest.raises(ValueError):
            bits.split_words(-1, 2)

    def test_split_rejects_overflow(self):
        with pytest.raises(ValueError):
            bits.split_words(1 << 128, 2)

    def test_join_rejects_oversized_word(self):
        with pytest.raises(ValueError):
            bits.join_words([1 << 64])

    def test_split_is_little_endian(self):
        assert bits.split_words((2 << 64) | 1, 2) == [1, 2]

    def test_split_custom_width(self):
        assert bits.split_words(0x1234, 4, width=8) == [0x34, 0x12, 0, 0]


class TestDoubleWordPairs:
    @given(U128)
    def test_to_from_dw_roundtrip(self, x):
        assert bits.from_dw(*bits.to_dw(x)) == x

    def test_to_dw_rejects_129_bits(self):
        with pytest.raises(ValueError):
            bits.to_dw(1 << 128)

    def test_to_dw_rejects_negative(self):
        with pytest.raises(ValueError):
            bits.to_dw(-1)


class TestBitLengthWords:
    @pytest.mark.parametrize(
        "bits_in,expected", [(1, 1), (64, 1), (65, 2), (128, 2), (129, 3)]
    )
    def test_word_counts(self, bits_in, expected):
        assert bits.bit_length_words(bits_in) == expected

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            bits.bit_length_words(0)
