"""Tests for repro.serve: coalescing, admission, deadlines, degradation.

The headline property, mirrored from docs/SERVING.md: a coalesced batch
is **bit-identical** to running each request alone through the faithful
engine — batching is a latency/throughput trade, never a correctness
trade. The rest covers the admission primitives (token bucket, queue
depth), per-tenant quotas, deadline expiry mid-coalesce (one request's
deadline never poisons its batchmates), breaker-aware degrade/shed
dispatch, graceful shutdown semantics, and the accounting invariant
``submitted == shed + completed + failed`` — no request is ever dropped
silently.
"""

import asyncio
import random

import pytest

from repro.arith.primes import find_ntt_prime
from repro.errors import (
    ServeDeadlineError,
    ServeError,
    ServeOverloadError,
)
from repro.fast.blas import FastBlasPlan
from repro.fast.ntt import FastNtt
from repro.kernels import get_backend
from repro.ntt.negacyclic import negacyclic_polymul
from repro.serve import (
    AdmissionController,
    Coalescer,
    ReproService,
    Request,
    SERVE_OPS,
    ServeConfig,
    TokenBucket,
)

N = 32
Q = find_ntt_prime(30, 2 * N)


def _pairs(seed, count, n=N, q=Q):
    rng = random.Random(seed)
    return [
        (
            [rng.randrange(q) for _ in range(n)],
            [rng.randrange(q) for _ in range(n)],
        )
        for _ in range(count)
    ]


def _faithful_products(pairs, q=Q):
    backend = get_backend("avx512")
    return [negacyclic_polymul(f, g, q, backend) for f, g in pairs]


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


# ----------------------------------------------------------------------
# Admission primitives
# ----------------------------------------------------------------------


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=3.0, clock=clock)
        assert [bucket.try_acquire() for _ in range(4)] == [
            True, True, True, False,
        ]
        clock.now += 1.0  # 2 tokens refilled
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=2.0, clock=clock)
        clock.now += 60.0
        assert bucket.available() == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ServeError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ServeError):
            TokenBucket(rate=1.0, burst=0.5)


class TestAdmissionController:
    def test_queue_full_reason(self):
        admission = AdmissionController(max_queue_depth=2)
        admission.admit("t", 1)
        with pytest.raises(ServeOverloadError) as err:
            admission.admit("t", 2)
        assert err.value.reason == "queue_full"
        assert err.value.tenant == "t"

    def test_quota_is_per_tenant(self):
        clock = FakeClock()
        admission = AdmissionController(
            max_queue_depth=100,
            tenant_rate=1.0,
            tenant_burst=2.0,
            clock=clock,
        )
        admission.admit("a", 0)
        admission.admit("a", 0)
        with pytest.raises(ServeOverloadError) as err:
            admission.admit("a", 0)
        assert err.value.reason == "quota"
        # A different tenant has its own bucket.
        admission.admit("b", 0)
        # And tenant "a" recovers as tokens refill.
        clock.now += 1.0
        admission.admit("a", 0)


# ----------------------------------------------------------------------
# Coalescer
# ----------------------------------------------------------------------


class TestCoalescer:
    def _request(self, clock, op="polymul", n=N, q=Q):
        return Request(
            op=op, n=n, q=q, payload=(), enqueued_at=clock(),
        )

    def test_size_trigger_pops_full_batch(self):
        clock = FakeClock()
        coalescer = Coalescer(max_batch=3, max_wait_s=1.0, clock=clock)
        assert coalescer.add(self._request(clock)) is None
        assert coalescer.add(self._request(clock)) is None
        batch = coalescer.add(self._request(clock))
        assert batch is not None and len(batch) == 3
        assert coalescer.depth() == 0

    def test_batches_only_within_key(self):
        clock = FakeClock()
        coalescer = Coalescer(max_batch=2, max_wait_s=1.0, clock=clock)
        assert coalescer.add(self._request(clock, op="polymul")) is None
        assert coalescer.add(self._request(clock, op="ntt")) is None
        batch = coalescer.add(self._request(clock, op="ntt"))
        assert batch is not None
        assert all(r.op == "ntt" for r in batch)
        assert coalescer.depth() == 1  # the polymul still queued

    def test_age_trigger_via_due(self):
        clock = FakeClock()
        coalescer = Coalescer(max_batch=10, max_wait_s=0.5, clock=clock)
        coalescer.add(self._request(clock))
        assert coalescer.due() == []
        clock.now += 0.6
        ready = coalescer.due()
        assert len(ready) == 1 and len(ready[0]) == 1
        assert coalescer.depth() == 0

    def test_drain_pops_everything(self):
        clock = FakeClock()
        coalescer = Coalescer(max_batch=10, max_wait_s=10.0, clock=clock)
        coalescer.add(self._request(clock, op="polymul"))
        coalescer.add(self._request(clock, op="ntt"))
        assert len(coalescer.drain()) == 2
        assert coalescer.depth() == 0
        assert coalescer.oldest_wait_s() == 0.0

    def test_validation(self):
        with pytest.raises(ServeError):
            Coalescer(max_batch=0)
        with pytest.raises(ServeError):
            Coalescer(max_wait_s=-1.0)


# ----------------------------------------------------------------------
# Service: correctness of the coalesced path
# ----------------------------------------------------------------------


class TestServiceBitExact:
    def test_coalesced_polymul_matches_faithful(self):
        """Batched serving is bit-identical to per-request faithful runs."""
        pairs = _pairs(seed=1, count=8)
        expected = _faithful_products(pairs)

        async def drive():
            service = ReproService(config=ServeConfig(
                engine="fast", max_batch=4, max_wait_s=0.001,
            ))
            async with service:
                got = await asyncio.gather(*(
                    service.submit("polymul", pair, N, Q) for pair in pairs
                ))
            return got, dict(service.stats)

        got, stats = asyncio.run(drive())
        assert got == expected
        assert stats["completed"] == 8
        assert stats["batches"] >= 2  # max_batch=4 ⇒ at least two batches
        assert stats["submitted"] == stats["completed"] + stats["failed"] + stats["shed"]

    def test_mixed_ops_coalesce_separately(self):
        pairs = _pairs(seed=2, count=4)
        blas = FastBlasPlan(Q)
        ntt = FastNtt(N, Q)

        async def drive():
            service = ReproService(config=ServeConfig(
                engine="fast", max_batch=4, max_wait_s=0.001,
            ))
            async with service:
                muls = [
                    service.submit("blas.vector_mul", pair, N, Q)
                    for pair in pairs
                ]
                ntts = [
                    service.submit("ntt", (pair[0],), N, Q) for pair in pairs
                ]
                results = await asyncio.gather(*muls, *ntts)
            return results

        results = asyncio.run(drive())
        assert results[:4] == [blas.vector_mul(f, g) for f, g in pairs]
        assert results[4:] == [ntt.forward(f) for f, _ in pairs]

    def test_unknown_op_rejected(self):
        async def drive():
            service = ReproService(config=ServeConfig(engine="fast"))
            async with service:
                with pytest.raises(ServeError):
                    await service.submit("conv2d", ((), ()), N, Q)

        asyncio.run(drive())
        assert "conv2d" not in SERVE_OPS

    def test_bad_operand_fails_alone(self):
        """A poison request fails itself, never its batchmates."""
        pairs = _pairs(seed=3, count=3)
        expected = _faithful_products(pairs)

        async def drive():
            service = ReproService(config=ServeConfig(
                engine="fast", max_batch=4, max_wait_s=60.0,
            ))
            async with service:
                tasks = [
                    asyncio.ensure_future(service.submit("polymul", p, N, Q))
                    for p in pairs
                ]
                # Wrong-length operand joins the same (op, n, q) batch.
                poison = asyncio.ensure_future(
                    service.submit("polymul", ([1, 2, 3], [4, 5, 6]), N, Q)
                )
                results = await asyncio.gather(
                    *tasks, poison, return_exceptions=True
                )
            return results, dict(service.stats)

        results, stats = asyncio.run(drive())
        assert results[:3] == expected
        assert isinstance(results[3], Exception)
        assert not isinstance(results[3], ServeOverloadError)
        assert stats["completed"] == 3 and stats["failed"] == 1

    def test_rns_mul_requires_registration(self):
        async def drive():
            service = ReproService(config=ServeConfig(
                engine="fast", max_batch=1,
            ))
            async with service:
                with pytest.raises(ServeError, match="register_ring"):
                    await service.submit("rns.mul", ((), ()), N, 12345)

        asyncio.run(drive())


# ----------------------------------------------------------------------
# Service: overload, quotas, deadlines, shutdown
# ----------------------------------------------------------------------


class TestServiceOverload:
    def test_queue_full_sheds_with_accounting(self):
        """Past max_queue_depth every request sheds, typed and counted."""
        pairs = _pairs(seed=4, count=8)
        expected = _faithful_products(pairs[:3])

        async def drive():
            # Huge batch/window: nothing dispatches until flush(), so
            # the backlog is exactly the number of admitted requests.
            service = ReproService(config=ServeConfig(
                engine="fast", max_batch=100, max_wait_s=60.0,
                max_queue_depth=3,
            ))
            async with service:
                tasks = [
                    asyncio.ensure_future(service.submit("polymul", p, N, Q))
                    for p in pairs
                ]
                await asyncio.sleep(0)  # let every submit hit admission
                await service.flush()
                results = await asyncio.gather(
                    *tasks, return_exceptions=True
                )
            return results, dict(service.stats)

        results, stats = asyncio.run(drive())
        ok = [r for r in results if not isinstance(r, Exception)]
        shed = [r for r in results if isinstance(r, ServeOverloadError)]
        assert ok == expected
        assert len(shed) == 5
        assert all(e.reason == "queue_full" for e in shed)
        assert stats["shed"] == 5 and stats["completed"] == 3
        assert stats["submitted"] == stats["completed"] + stats["failed"] + stats["shed"]

    def test_tenant_quota_sheds(self):
        pairs = _pairs(seed=5, count=5)

        async def drive():
            service = ReproService(config=ServeConfig(
                engine="fast", max_batch=100, max_wait_s=60.0,
                tenant_rate=0.001, tenant_burst=2.0,
            ))
            async with service:
                tasks = [
                    asyncio.ensure_future(
                        service.submit("polymul", p, N, Q, tenant="chatty")
                    )
                    for p in pairs
                ]
                await asyncio.sleep(0)
                await service.flush()
                results = await asyncio.gather(
                    *tasks, return_exceptions=True
                )
            return results, dict(service.stats)

        results, stats = asyncio.run(drive())
        shed = [r for r in results if isinstance(r, ServeOverloadError)]
        assert len(shed) == 3
        assert all(e.reason == "quota" and e.tenant == "chatty" for e in shed)
        assert stats["completed"] == 2

    def test_deadline_expiry_mid_coalesce(self):
        """Expired requests fail alone; fresh batchmates still complete."""
        pairs = _pairs(seed=6, count=4)
        expected = _faithful_products(pairs[2:])

        async def drive():
            service = ReproService(config=ServeConfig(
                engine="fast", max_batch=100, max_wait_s=60.0,
            ))
            async with service:
                doomed = [
                    asyncio.ensure_future(service.submit(
                        "polymul", p, N, Q, deadline_s=0.01,
                    ))
                    for p in pairs[:2]
                ]
                fresh = [
                    asyncio.ensure_future(service.submit("polymul", p, N, Q))
                    for p in pairs[2:]
                ]
                await asyncio.sleep(0.05)  # outlive the 10ms deadlines
                await service.flush()
                results = await asyncio.gather(
                    *doomed, *fresh, return_exceptions=True
                )
            return results, dict(service.stats)

        results, stats = asyncio.run(drive())
        assert all(isinstance(r, ServeDeadlineError) for r in results[:2])
        assert results[2:] == expected
        assert stats["failed"] == 2 and stats["completed"] == 2
        assert stats["submitted"] == stats["completed"] + stats["failed"] + stats["shed"]

    def test_closed_service_sheds_new_work(self):
        async def drive():
            service = ReproService(config=ServeConfig(engine="fast"))
            async with service:
                pass
            with pytest.raises(ServeOverloadError) as err:
                await service.submit("polymul", _pairs(7, 1)[0], N, Q)
            return err.value, dict(service.stats)

        exc, stats = asyncio.run(drive())
        assert exc.reason == "shutting_down"
        assert stats["shed"] == 1

    def test_close_without_drain_fails_queued(self):
        pairs = _pairs(seed=8, count=3)

        async def drive():
            service = ReproService(config=ServeConfig(
                engine="fast", max_batch=100, max_wait_s=60.0,
            ))
            await service.start()
            tasks = [
                asyncio.ensure_future(service.submit("polymul", p, N, Q))
                for p in pairs
            ]
            await asyncio.sleep(0)
            await service.close(drain=False)
            results = await asyncio.gather(*tasks, return_exceptions=True)
            return results, dict(service.stats)

        results, stats = asyncio.run(drive())
        assert all(isinstance(r, ServeOverloadError) for r in results)
        assert all(r.reason == "shutting_down" for r in results)
        # Admitted-then-abandoned counts as *failed* (shutdown), not shed.
        assert stats["failed"] == 3 and stats["completed"] == 0
        assert stats["submitted"] == stats["completed"] + stats["failed"] + stats["shed"]

    def test_close_with_drain_completes_queued(self):
        pairs = _pairs(seed=9, count=3)
        expected = _faithful_products(pairs)

        async def drive():
            service = ReproService(config=ServeConfig(
                engine="fast", max_batch=100, max_wait_s=60.0,
            ))
            await service.start()
            tasks = [
                asyncio.ensure_future(service.submit("polymul", p, N, Q))
                for p in pairs
            ]
            await asyncio.sleep(0)
            await service.close(drain=True)
            return await asyncio.gather(*tasks)

        assert asyncio.run(drive()) == expected


# ----------------------------------------------------------------------
# Service: breaker-aware dispatch (no pool start needed: the breaker
# check happens before the engine runs, so an unstarted executor works)
# ----------------------------------------------------------------------


class TestServiceBreaker:
    def _open_pool(self):
        from repro.par.executor import ParallelExecutor
        from repro.resil import CircuitBreaker

        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=3600.0)
        breaker.record_failure()
        assert breaker.state == "open"
        return ParallelExecutor(workers=1, breaker=breaker)

    def test_breaker_degrade_stays_bit_exact(self):
        pairs = _pairs(seed=10, count=4)
        expected = _faithful_products(pairs)
        pool = self._open_pool()

        async def drive():
            service = ReproService(
                executor=pool,
                config=ServeConfig(
                    engine="parallel", breaker_mode="degrade",
                    max_batch=4, max_wait_s=0.001,
                ),
            )
            async with service:
                got = await asyncio.gather(*(
                    service.submit("polymul", p, N, Q) for p in pairs
                ))
            return got, dict(service.stats)

        try:
            got, stats = asyncio.run(drive())
        finally:
            pool.close()
        assert got == expected
        assert stats["degraded"] >= 1
        assert stats["completed"] == 4

    def test_breaker_shed_mode_rejects_typed(self):
        pairs = _pairs(seed=11, count=2)
        pool = self._open_pool()

        async def drive():
            service = ReproService(
                executor=pool,
                config=ServeConfig(
                    engine="parallel", breaker_mode="shed",
                    max_batch=2, max_wait_s=0.001,
                ),
            )
            async with service:
                results = await asyncio.gather(
                    *(service.submit("polymul", p, N, Q) for p in pairs),
                    return_exceptions=True,
                )
            return results, dict(service.stats)

        try:
            results, stats = asyncio.run(drive())
        finally:
            pool.close()
        assert all(isinstance(r, ServeOverloadError) for r in results)
        assert all(r.reason == "breaker_open" for r in results)
        assert stats["shed"] == 2 and stats["completed"] == 0
        assert stats["submitted"] == stats["completed"] + stats["failed"] + stats["shed"]


# ----------------------------------------------------------------------
# Config validation
# ----------------------------------------------------------------------


class TestServeConfig:
    def test_rejects_unknown_engine(self):
        with pytest.raises(ServeError):
            ServeConfig(engine="gpu")

    def test_rejects_unknown_breaker_mode(self):
        with pytest.raises(ServeError):
            ServeConfig(breaker_mode="explode")

    def test_rejects_bad_deadline(self):
        with pytest.raises(ServeError):
            ServeConfig(default_deadline_s=0.0)

    def test_rejects_bad_slo_settings(self):
        with pytest.raises(ServeError):
            ServeConfig(slo_p99_ms=0.0)
        with pytest.raises(ServeError):
            ServeConfig(slo_window_s=0.0)
        with pytest.raises(ServeError):
            ServeConfig(slo_burn_windows=0)
        with pytest.raises(ServeError):
            ServeConfig(slo_error_budget=0.0)
        with pytest.raises(ServeError):
            ServeConfig(slo_error_budget=1.5)
        # A valid objective threads through to the tracker.
        config = ServeConfig(slo_p99_ms=50.0, slo_burn_windows=2)
        assert config.slo_p99_ms == 50.0


class TestServeObservability:
    """The per-request latency decomposition lands in the metrics."""

    def test_latency_slices_and_slo_recorded(self):
        from repro.obs import session as obs_session
        from repro.obs.session import observing

        obs_session.disable()
        pairs = _pairs(seed=7, count=8)

        async def drive():
            service = ReproService(config=ServeConfig(
                engine="fast", max_batch=4, max_wait_s=0.001,
                slo_p99_ms=250.0,
            ))
            async with service:
                await asyncio.gather(*(
                    service.submit(
                        "polymul", pair, N, Q, tenant=f"t{i % 2}"
                    )
                    for i, pair in enumerate(pairs)
                ))
            return service

        try:
            with observing() as session:
                service = asyncio.run(drive())
                snap = session.metrics.snapshot()
        finally:
            obs_session.disable()

        # Decomposition: every completed request contributes one sample
        # to each stage histogram, and the stages sum below the total.
        for stage in (
            "serve.latency_s.polymul",
            "serve.coalesce_wait_s.polymul",
            "serve.queue_wait_s.polymul",
            "serve.compute_s.polymul",
        ):
            assert snap[stage]["count"] == 8, stage
        slices_mean = sum(
            snap[f"serve.{s}.polymul"]["mean"]
            for s in ("coalesce_wait_s", "queue_wait_s", "compute_s")
        )
        assert slices_mean <= snap["serve.latency_s.polymul"]["mean"] * 1.01

        # Per-tenant latency series exist for both rotated tenants.
        assert snap["serve.tenant.t0.latency_s"]["count"] == 4
        assert snap["serve.tenant.t1.latency_s"]["count"] == 4

        # Coalescer fill histogram observed one sample per batch.
        assert (
            snap["serve.coalesce.batch_size"]["count"]
            == snap["serve.batches"]["value"]
        )

        # The SLO tracker was fed every completion for op and tenants.
        assert service.slo.slo_p99_ms == 250.0
        assert "polymul" in service.slo._ops
        assert {"t0", "t1"} <= set(service.slo._tenants)


# ----------------------------------------------------------------------
# Loadgen smoke (fast engine: no pool, tiny sizes)
# ----------------------------------------------------------------------


def test_loadgen_smoke_fast_engine(tmp_path):
    from repro.serve import run_loadgen

    lines = []
    code = run_loadgen(
        ops=("polymul",),
        logn=5,
        requests=16,
        baseline_requests=8,
        engine="fast",
        max_batch=8,
        max_wait_s=0.002,
        overload_queue_depth=4,
        overload_duration_s=0.1,
        min_gain=0.0,          # gains are a pool property, not gated here
        gate_tail=None,
        snapshot=str(tmp_path / "BENCH_serve.json"),
        output_dir=str(tmp_path),
        emit=lines.append,
    )
    assert code == 0, "\n".join(lines)
    assert (tmp_path / "BENCH_serve.json").exists()
