"""Tests for prime generation and roots of unity."""

import pytest

from repro.arith.modular import pow_mod
from repro.arith.primes import (
    default_modulus,
    find_ntt_prime,
    find_primitive_root,
    is_prime,
    root_of_unity,
)
from repro.errors import ArithmeticDomainError, NttParameterError


class TestIsPrime:
    @pytest.mark.parametrize("p", [2, 3, 5, 7, 97, 7681, 12289, (1 << 61) - 1])
    def test_known_primes(self, p):
        assert is_prime(p)

    @pytest.mark.parametrize("n", [0, 1, 4, 100, 561, 1729, (1 << 61) - 3])
    def test_known_composites(self, n):
        # 561 and 1729 are Carmichael numbers (Fermat pseudoprimes).
        assert not is_prime(n)

    def test_large_prime(self):
        assert is_prime(default_modulus())


class TestFindNttPrime:
    @pytest.mark.parametrize("bits,order", [(20, 256), (60, 1024), (124, 1 << 20)])
    def test_properties(self, bits, order):
        q = find_ntt_prime(bits, order)
        assert q.bit_length() == bits
        assert q % order == 1
        assert is_prime(q)

    def test_is_largest_such_prime(self):
        q = find_ntt_prime(20, 256)
        k = (q - 1) // 256
        for bigger_k in range(k + 1, ((1 << 20) - 1) // 256 + 1):
            candidate = bigger_k * 256 + 1
            if candidate.bit_length() > 20:
                break
            assert not is_prime(candidate)

    def test_rejects_impossible_request(self):
        with pytest.raises(ArithmeticDomainError):
            find_ntt_prime(8, 1 << 10)

    def test_rejects_non_power_of_two_order(self):
        with pytest.raises(NttParameterError):
            find_ntt_prime(20, 100)

    def test_swapped_arguments_error_names_both_parameters(self):
        # find_ntt_prime(4096, 120) is the classic swap of
        # find_ntt_prime(120, 4096); the message must show both values
        # and hint at the argument order.
        with pytest.raises(NttParameterError) as excinfo:
            find_ntt_prime(4096, 120)
        message = str(excinfo.value)
        assert "bits=4096" in message
        assert "order=120" in message
        assert "swapped" in message

    def test_impossible_request_error_names_both_parameters(self):
        with pytest.raises(ArithmeticDomainError) as excinfo:
            find_ntt_prime(8, 1 << 10)
        message = str(excinfo.value)
        assert "bits=8" in message
        assert "order=1024" in message


class TestRootOfUnity:
    @pytest.mark.parametrize("n", [2, 8, 256, 1 << 14])
    def test_primitive_order(self, n):
        q = default_modulus()
        w = root_of_unity(n, q)
        assert pow(w, n, q) == 1
        if n > 1:
            assert pow(w, n // 2, q) != 1

    def test_n_one(self):
        assert root_of_unity(1, 17) == 1

    def test_rejects_unsupported_order(self):
        q = find_ntt_prime(20, 256)
        with pytest.raises(NttParameterError):
            root_of_unity(1 << 19, q)

    def test_deterministic(self):
        q = find_ntt_prime(60, 1024)
        assert root_of_unity(512, q) == root_of_unity(512, q)


class TestPrimitiveRoot:
    def test_small_prime_generator(self):
        g = find_primitive_root(17)
        seen = {pow_mod(g, e, 17) for e in range(16)}
        assert seen == set(range(1, 17))

    def test_refuses_large_prime(self):
        with pytest.raises(ArithmeticDomainError):
            find_primitive_root(default_modulus())

    def test_rejects_composite(self):
        with pytest.raises(ArithmeticDomainError):
            find_primitive_root(16)


class TestDefaultModulus:
    def test_is_124_bit_ntt_prime(self):
        q = default_modulus()
        assert q.bit_length() == 124
        assert q % (1 << 20) == 1
        assert is_prime(q)

    def test_cached(self):
        assert default_modulus() is default_modulus()
