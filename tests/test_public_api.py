"""Public API surface tests (what the README promises)."""

import pytest

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"


class TestQuickstart:
    def test_docstring_example(self):
        q = repro.default_modulus()
        ntt = repro.SimdNtt(1 << 10, q, repro.get_backend("mqx"), engine="fast")
        data = list(range(1 << 10))
        spectrum = ntt.forward(data)
        assert ntt.inverse(spectrum) == data

    def test_polynomial_pipeline(self):
        q = repro.default_modulus()
        backend = repro.get_backend("avx512")
        f = [1, 2, 3, 4] * 4
        g = [5, 6, 7, 8] * 4
        product = repro.simd_ntt_polymul(f, g, q, backend)
        from repro.ntt.reference import schoolbook_polymul

        assert product == schoolbook_polymul(f, g, q)

    def test_estimation_entrypoints(self):
        q = repro.default_modulus()
        cpu = repro.get_cpu("amd_epyc_9654")
        est = repro.estimate_ntt(1 << 12, q, repro.get_backend("mqx"), cpu)
        assert est.ns > 0
        blas = repro.estimate_blas(
            "vector_mul", 1024, q, repro.get_backend("avx512"), cpu
        )
        assert blas.ns_per_element > 0

    def test_custom_mqx_features(self):
        features = repro.MqxFeatures(wide_mul=False, carry=True, mulhi_only=True)
        backend = repro.get_backend("mqx", features=features)
        assert backend.features.label == "+Mh,C"

    def test_sol_entrypoint(self):
        sweep = repro.sol_sweep(
            "mqx", "amd_epyc_9654", "amd_epyc_9965s", log_sizes=[12]
        )
        assert 12 in sweep

    def test_pisa_entrypoint(self):
        cases = repro.validate_pisa(repro.get_cpu("amd_epyc_9654"))
        assert len(cases) == 3
