"""Cross-validation of the fast (NumPy) engine against the faithful path.

The acceptance bar for ``repro.fast``: bit-exact agreement with the
ISA-simulated backends and the reference arithmetic on moduli of 64,
100, 120 and 124 bits, for the NTT (forward / inverse / negacyclic
polymul), all four BLAS operations, batched and unbatched, including
carry/borrow edge cases at the ``2^64`` limb boundary.
"""

import random

import numpy as np
import pytest

from repro import BlasPlan, SimdNtt, get_backend
from repro.arith.dwmod import addmod128, mulmod128, submod128
from repro.arith.doubleword import dw_from_int, dw_value
from repro.arith.primes import find_ntt_prime
from repro.errors import ArithmeticDomainError, NttParameterError
from repro.fast.blas import FastBlasPlan
from repro.fast.limbs import (
    add128,
    limbs_from_ints,
    limbs_to_ints,
    mul_64x64,
    mullo128,
    shift_right_256,
    sub128,
    wide_mul_128,
)
from repro.fast.modular import FastModulus
from repro.fast.ntt import FastNegacyclic, FastNtt, fast_negacyclic_polymul
from repro.ntt.negacyclic import NegacyclicNtt
from repro.ntt.reference import naive_intt, naive_ntt
from repro.obs import observing

#: The acceptance-criteria modulus widths; order 256 supports n <= 128
#: negacyclic transforms at every width.
WIDTHS = (64, 100, 120, 124)


def prime_for(bits):
    return find_ntt_prime(bits, 256)


def boundary_values(q):
    """Values near the modulus and the 2^64 limb boundary (reduced)."""
    candidates = [
        0, 1, 2, q - 1, q - 2,
        (1 << 64) - 1, 1 << 64, (1 << 64) + 1,
        (1 << 64) - 2, (2 << 64) - 1,
    ]
    return sorted({c % q for c in candidates})


def random_vector(rng, q, length):
    specials = boundary_values(q)
    return [
        rng.choice(specials) if rng.random() < 0.25 else rng.randrange(q)
        for _ in range(length)
    ]


class TestLimbPrimitives:
    def test_pack_unpack_roundtrip(self):
        values = [0, 1, (1 << 64) - 1, 1 << 64, (1 << 128) - 1, 12345]
        assert limbs_to_ints(limbs_from_ints(values)) == values

    def test_pack_batched(self):
        rows = [[1, 2, 3], [(1 << 100), (1 << 64) - 1, 0]]
        arr = limbs_from_ints(rows)
        assert arr.shape == (2, 3, 2)
        assert limbs_to_ints(arr) == rows

    def test_pack_rejects_negative_and_oversized(self):
        with pytest.raises(ArithmeticDomainError):
            limbs_from_ints([-1])
        with pytest.raises(ArithmeticDomainError):
            limbs_from_ints([1 << 128])

    def test_mul_64x64_exhaustive_boundaries(self):
        words = [0, 1, 2, (1 << 32) - 1, 1 << 32, (1 << 63), (1 << 64) - 1]
        a = np.array([x for x in words for _ in words], dtype=np.uint64)
        b = np.array(words * len(words), dtype=np.uint64)
        hi, lo = mul_64x64(a, b)
        for x, y, h, l in zip(a.tolist(), b.tolist(), hi.tolist(), lo.tolist()):
            assert (int(h) << 64) | int(l) == x * y

    def test_add_sub_carry_borrow_chains(self):
        pairs = [
            ((1 << 128) - 1, 1),
            ((1 << 64) - 1, 1),
            ((1 << 128) - 1, (1 << 128) - 1),
            (0, 0),
            (1 << 64, (1 << 64) - 1),
        ]
        a = limbs_from_ints([p[0] for p in pairs])
        b = limbs_from_ints([p[1] for p in pairs])
        total, carry = add128(a, b)
        diff, borrow = sub128(b, a)
        for (x, y), s, c, d, br in zip(
            pairs, limbs_to_ints(total), carry.tolist(),
            limbs_to_ints(diff), borrow.tolist(),
        ):
            assert s == (x + y) % (1 << 128)
            assert c == ((x + y) >> 128 > 0)
            assert d == (y - x) % (1 << 128)
            assert br == (y < x)

    def test_wide_mul_and_mullo(self):
        rng = random.Random(11)
        vals = [rng.randrange(1 << 128) for _ in range(64)] + [
            0, 1, (1 << 64) - 1, 1 << 64, (1 << 128) - 1,
        ]
        a = limbs_from_ints(vals)
        b = limbs_from_ints(list(reversed(vals)))
        words = wide_mul_128(a, b)
        low = mullo128(a, b)
        for x, y, w, l in zip(
            vals, reversed(vals), words.tolist(), limbs_to_ints(low)
        ):
            product = x * y
            got = sum(int(word) << (64 * i) for i, word in enumerate(w))
            assert got == product
            assert l == product % (1 << 128)

    @pytest.mark.parametrize("amount", [0, 1, 63, 64, 65, 123, 127, 128, 191, 255])
    def test_shift_right_256(self, amount):
        rng = random.Random(amount)
        vals = [rng.randrange(1 << 256) for _ in range(16)]
        words = np.array(
            [[(v >> (64 * i)) & ((1 << 64) - 1) for i in range(4)] for v in vals],
            dtype=np.uint64,
        )
        shifted = shift_right_256(words, amount)
        for v, got in zip(vals, limbs_to_ints(shifted)):
            expected = (v >> amount) % (1 << 128)
            assert got == expected


class TestFastModulus:
    @pytest.mark.parametrize("bits", WIDTHS)
    def test_matches_dwmod_bit_for_bit(self, bits):
        q = prime_for(bits)
        fm = FastModulus(q)
        rng = random.Random(bits)
        xs = random_vector(rng, q, 256)
        ys = random_vector(rng, q, 256)
        m = dw_from_int(q)
        assert fm.addmod_ints(xs, ys) == [
            dw_value(addmod128(dw_from_int(x), dw_from_int(y), m))
            for x, y in zip(xs, ys)
        ]
        assert fm.submod_ints(xs, ys) == [
            dw_value(submod128(dw_from_int(x), dw_from_int(y), m))
            for x, y in zip(xs, ys)
        ]
        assert fm.mulmod_ints(xs, ys) == [
            dw_value(mulmod128(dw_from_int(x), dw_from_int(y), m))
            for x, y in zip(xs, ys)
        ]

    def test_rejects_unreduced_operands(self):
        q = prime_for(100)
        fm = FastModulus(q)
        with pytest.raises(ArithmeticDomainError):
            fm.addmod_ints([0, q], [1, 1])

    def test_rejects_wide_modulus(self):
        with pytest.raises(ArithmeticDomainError):
            FastModulus(1 << 125)


class TestFastNttCrossValidation:
    @pytest.mark.parametrize("bits", WIDTHS)
    def test_forward_inverse_match_scalar_backend(self, bits):
        q = prime_for(bits)
        n = 32
        plan = SimdNtt(n, q, get_backend("scalar"))
        fast = FastNtt(n, q, table=plan.table)
        rng = random.Random(bits * 3)
        data = random_vector(rng, q, n)
        for natural in (True, False):
            spectrum = plan.forward(data, natural_order=natural)
            assert fast.forward(data, natural_order=natural) == spectrum
            assert fast.inverse(spectrum, natural_order=natural) == \
                plan.inverse(spectrum, natural_order=natural)

    @pytest.mark.parametrize("bits", WIDTHS)
    def test_matches_reference_ntt(self, bits):
        q = prime_for(bits)
        n = 16
        fast = FastNtt(n, q)
        rng = random.Random(bits * 5)
        data = random_vector(rng, q, n)
        assert fast.forward(data) == naive_ntt(data, q, root=fast.table.root)
        spectrum = fast.forward(data)
        assert fast.inverse(spectrum) == naive_intt(
            spectrum, q, root=fast.table.root
        )

    @pytest.mark.parametrize("bits", WIDTHS)
    def test_negacyclic_polymul_matches_faithful(self, bits):
        q = prime_for(bits)
        n = 32
        faithful = NegacyclicNtt(n, q, get_backend("scalar"))
        fast = FastNegacyclic(n, q, psi=faithful.psi)
        rng = random.Random(bits * 7)
        f = random_vector(rng, q, n)
        g = random_vector(rng, q, n)
        assert fast.multiply(f, g) == faithful.multiply(f, g)

    def test_batched_equals_unbatched(self):
        q = prime_for(120)
        n = 64
        fast = FastNtt(n, q)
        rng = random.Random(99)
        batch = [random_vector(rng, q, n) for _ in range(4)]
        assert fast.forward(batch) == [fast.forward(row) for row in batch]
        spectra = fast.forward(batch, natural_order=False)
        assert fast.inverse(spectra, natural_order=False) == batch
        neg = FastNegacyclic(n, q)
        other = [random_vector(rng, q, n) for _ in range(4)]
        assert neg.multiply(batch, other) == [
            neg.multiply(f, g) for f, g in zip(batch, other)
        ]

    def test_one_shot_polymul(self):
        q = prime_for(100)
        rng = random.Random(5)
        f = random_vector(rng, q, 16)
        g = random_vector(rng, q, 16)
        faithful = NegacyclicNtt(16, q, get_backend("scalar"))
        fast_plan = FastNegacyclic(16, q, psi=faithful.psi)
        assert fast_plan.multiply(f, g) == faithful.multiply(f, g)
        # The free-function form picks its own psi; verify it against a
        # faithful plan built with the same psi.
        got = fast_negacyclic_polymul(f, g, q)
        same_psi = NegacyclicNtt(16, q, get_backend("scalar"))
        assert got == same_psi.multiply(f, g)

    def test_rejects_unreduced_and_wrong_length(self):
        q = prime_for(100)
        fast = FastNtt(16, q)
        with pytest.raises(ArithmeticDomainError):
            fast.forward([q] + [0] * 15)
        with pytest.raises(NttParameterError):
            fast.forward([0] * 15)


class TestFastBlasCrossValidation:
    @pytest.mark.parametrize("bits", WIDTHS)
    def test_all_four_ops_match_scalar_backend(self, bits):
        q = prime_for(bits)
        faithful = BlasPlan(q, get_backend("scalar"))
        fast = FastBlasPlan(q)
        rng = random.Random(bits * 11)
        x = random_vector(rng, q, 64)
        y = random_vector(rng, q, 64)
        a = rng.randrange(q)
        assert fast.vector_add(x, y) == faithful.vector_add(x, y)
        assert fast.vector_sub(x, y) == faithful.vector_sub(x, y)
        assert fast.vector_mul(x, y) == faithful.vector_mul(x, y)
        assert fast.axpy(a, x, y) == faithful.axpy(a, x, y)

    def test_batched_equals_unbatched(self):
        q = prime_for(124)
        fast = FastBlasPlan(q)
        rng = random.Random(13)
        xs = [random_vector(rng, q, 32) for _ in range(3)]
        ys = [random_vector(rng, q, 32) for _ in range(3)]
        a = rng.randrange(q)
        for op in ("vector_add", "vector_sub", "vector_mul"):
            assert getattr(fast, op)(xs, ys) == [
                getattr(fast, op)(x, y) for x, y in zip(xs, ys)
            ]
        assert fast.axpy(a, xs, ys) == [
            fast.axpy(a, x, y) for x, y in zip(xs, ys)
        ]

    def test_length_mismatch_rejected(self):
        q = prime_for(100)
        fast = FastBlasPlan(q)
        with pytest.raises(ArithmeticDomainError):
            fast.vector_add([1, 2], [1, 2, 3])


class TestEngineSwitch:
    def test_simd_ntt_engines_agree(self):
        q = prime_for(120)
        n = 32
        backend = get_backend("avx512")
        faithful = SimdNtt(n, q, backend)
        fast = SimdNtt(n, q, backend, engine="fast")
        rng = random.Random(17)
        data = random_vector(rng, q, n)
        spectrum = faithful.forward(data)
        assert fast.forward(data) == spectrum
        assert fast.inverse(spectrum) == data

    def test_blas_plan_engines_agree(self):
        q = prime_for(100)
        backend = get_backend("avx2")
        faithful = BlasPlan(q, backend)
        fast = BlasPlan(q, backend, engine="fast")
        rng = random.Random(19)
        x = random_vector(rng, q, 32)
        y = random_vector(rng, q, 32)
        for op in ("vector_add", "vector_sub", "vector_mul"):
            assert getattr(fast, op)(x, y) == getattr(faithful, op)(x, y)
        a = rng.randrange(q)
        assert fast.axpy(a, x, y) == faithful.axpy(a, x, y)

    def test_fast_blas_keeps_lane_contract(self):
        # Engine swaps must not loosen the API: a vector length that the
        # faithful backend would reject is rejected by the fast path too.
        q = prime_for(100)
        plan = BlasPlan(q, get_backend("avx512"), engine="fast")
        with pytest.raises(ArithmeticDomainError):
            plan.vector_add([1, 2, 3], [4, 5, 6])

    def test_unknown_engine_rejected(self):
        q = prime_for(100)
        backend = get_backend("scalar")
        with pytest.raises(NttParameterError):
            SimdNtt(16, q, backend, engine="warp")
        with pytest.raises(ArithmeticDomainError):
            BlasPlan(q, backend, engine="warp")

    def test_engine_counters_recorded(self):
        q = prime_for(100)
        backend = get_backend("scalar")
        n = 16
        rng = random.Random(23)
        data = random_vector(rng, q, n)
        with observing() as session:
            SimdNtt(n, q, backend, engine="fast").forward(data)
            SimdNtt(n, q, backend).forward(data)
            metrics = session.metrics.snapshot()
        assert metrics["engine.fast.calls.ntt.forward"]["value"] == 1
        assert metrics["engine.fast.elements.ntt.forward"]["value"] == n
        assert metrics["engine.faithful.calls.ntt.forward"]["value"] == 1
        assert metrics["engine.faithful.elements.ntt.forward"]["value"] == n

    def test_simd_polymul_engines_agree(self):
        from repro.ntt.polymul import simd_ntt_polymul

        q = prime_for(124)
        backend = get_backend("mqx")
        rng = random.Random(29)
        f = random_vector(rng, q, 24)
        g = random_vector(rng, q, 24)
        assert simd_ntt_polymul(f, g, q, backend, engine="fast") == (
            simd_ntt_polymul(f, g, q, backend)
        )
