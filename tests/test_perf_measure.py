"""Tests for the Section 5.1 measurement protocol model."""

import pytest

from repro.arith.primes import default_modulus
from repro.errors import ExperimentError
from repro.kernels import get_backend
from repro.machine.cpu import get_cpu
from repro.perf.measure import (
    BLAS_KEEP,
    BLAS_RUNS,
    NTT_KEEP,
    NTT_RUNS,
    measure_blas,
    measure_ntt,
)

Q = default_modulus()
CPU = get_cpu("amd_epyc_9654")


class TestProtocolParameters:
    def test_paper_values(self):
        assert (NTT_RUNS, NTT_KEEP) == (100, 50)
        assert (BLAS_RUNS, BLAS_KEEP) == (1000, 500)


class TestMeasureNtt:
    @pytest.fixture(scope="class")
    def result(self):
        return measure_ntt(1 << 12, Q, get_backend("mqx"), CPU)

    def test_mean_converges_to_steady_state(self, result):
        assert result.mean_ns == pytest.approx(result.steady_ns, rel=0.02)

    def test_first_iterations_are_cold(self, result):
        assert result.samples_ns[0] > 1.05 * result.steady_ns

    def test_discarding_warmup_matters(self, result):
        """Averaging ALL runs (no warm-up discard) biases upward."""
        assert result.warmup_bias > 1.0

    def test_deterministic_given_seed(self):
        a = measure_ntt(1 << 12, Q, get_backend("avx512"), CPU, seed=7)
        b = measure_ntt(1 << 12, Q, get_backend("avx512"), CPU, seed=7)
        assert a.samples_ns == b.samples_ns

    def test_different_seeds_differ(self):
        a = measure_ntt(1 << 12, Q, get_backend("avx512"), CPU, seed=1)
        b = measure_ntt(1 << 12, Q, get_backend("avx512"), CPU, seed=2)
        assert a.samples_ns != b.samples_ns
        assert a.mean_ns == pytest.approx(b.mean_ns, rel=0.02)

    def test_sample_count(self, result):
        assert len(result.samples_ns) == NTT_RUNS
        assert result.kept == NTT_KEEP


class TestMeasureBlas:
    def test_blas_protocol(self):
        result = measure_blas(
            "vector_mul", 1024, Q, get_backend("avx512"), CPU, runs=200, keep=100
        )
        assert result.mean_ns == pytest.approx(result.steady_ns, rel=0.02)
        assert result.runs == 200

    def test_invalid_keep_rejected(self):
        with pytest.raises(ExperimentError):
            measure_blas(
                "vector_add", 1024, Q, get_backend("scalar"), CPU, runs=10, keep=20
            )

    def test_measured_ordering_matches_model(self):
        """The protocol must preserve the Figure 4 ordering."""
        mqx = measure_blas("vector_mul", 1024, Q, get_backend("mqx"), CPU)
        avx512 = measure_blas("vector_mul", 1024, Q, get_backend("avx512"), CPU)
        assert mqx.mean_ns < avx512.mean_ns
