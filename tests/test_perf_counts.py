"""Tests for the analytic instruction-count module."""

import pytest

from repro.errors import ExperimentError
from repro.kernels import get_backend
from repro.perf.counts import count_table, kernel_counts

from tests.conftest import ALL_BACKEND_NAMES


@pytest.fixture(scope="module")
def table():
    return count_table()


class TestCounts:
    def test_all_instructions_classified(self, table):
        for backend_counts in table.values():
            for counts in backend_counts.values():
                assert counts.by_class.get("other", 0) == 0
                assert sum(counts.by_class.values()) == counts.instructions

    def test_mqx_shrinks_every_kernel(self, table):
        for kernel in ("addmod", "submod", "mulmod", "butterfly"):
            assert (
                table["mqx"][kernel].instructions
                < table["avx512"][kernel].instructions
            )

    def test_paper_headline_count_ratios(self, table):
        """Section 4: MQX cuts the AVX-512 butterfly by roughly 4x."""
        ratio = (
            table["avx512"]["butterfly"].instructions
            / table["mqx"]["butterfly"].instructions
        )
        assert 3.0 < ratio < 5.0

    def test_mulmod_is_multiply_dominated_for_avx512(self, table):
        counts = table["avx512"]["mulmod"]
        assert counts.share("multiply") > 0.1
        assert counts.by_class["multiply"] >= 36  # 9+ emulated wide muls

    def test_mqx_compare_footprint_vanishes(self, table):
        """MQX's carry instructions eliminate most compares."""
        avx512 = table["avx512"]["butterfly"]
        mqx = table["mqx"]["butterfly"]
        assert mqx.by_class.get("compare", 0) < avx512.by_class["compare"] / 4

    def test_per_element_ordering(self, table):
        """Per-residue counts: mqx < avx512 < avx2 (scalar separate)."""
        bf = {name: table[name]["butterfly"].per_element for name in table}
        assert bf["mqx"] < bf["avx512"] < bf["avx2"]

    def test_deterministic(self):
        a = kernel_counts(get_backend("avx512"), "mulmod")
        b = kernel_counts(get_backend("avx512"), "mulmod")
        assert a == b

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ExperimentError):
            kernel_counts(get_backend("scalar"), "fft")

    @pytest.mark.parametrize("name", ALL_BACKEND_NAMES)
    def test_memory_counted_from_tags(self, name, table):
        counts = table[name]["butterfly"]
        # The tracer region has no loads/stores (blocks preloaded).
        assert counts.by_class.get("memory", 0) == 0
