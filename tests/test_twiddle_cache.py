"""Tests for the process-wide memoized TwiddleTable cache.

``TwiddleTable.get`` must return one shared table per ``(n, q, root)``
across every NTT wrapper construction site, so building many plans over
the same modulus (the RNS pipeline, the repro.par workers) pays the
root-finding and table construction once. The cache is LRU-bounded so a
long-lived process cycling through many ``(n, q)`` pairs cannot grow it
without limit; evictions are observable as ``twiddle.evictions``.
"""

import pytest

from repro.arith.primes import find_ntt_prime
from repro.errors import NttParameterError
from repro.fast.ntt import FastNtt
from repro.kernels import get_backend
from repro.ntt.simd import SimdNtt
from repro.ntt.twiddles import DEFAULT_CACHE_CAPACITY, TwiddleTable
from repro.obs import observing

N = 16
Q = find_ntt_prime(62, 2 * N)


@pytest.fixture(autouse=True)
def fresh_cache():
    TwiddleTable.clear_cache()
    TwiddleTable.set_cache_capacity(DEFAULT_CACHE_CAPACITY)
    yield
    TwiddleTable.clear_cache()
    TwiddleTable.set_cache_capacity(DEFAULT_CACHE_CAPACITY)


class TestTwiddleTableGet:
    def test_memoizes_identical_parameters(self):
        assert TwiddleTable.get(N, Q) is TwiddleTable.get(N, Q)

    def test_resolved_root_aliases_default_request(self):
        table = TwiddleTable.get(N, Q)
        assert TwiddleTable.get(N, Q, table.root) is table

    def test_distinct_roots_get_distinct_tables(self):
        table = TwiddleTable.get(N, Q)
        # Any odd power of a primitive n-th root is another primitive root.
        other_root = pow(table.root, 3, Q)
        assert other_root != table.root
        other = TwiddleTable.get(N, Q, other_root)
        assert other is not table
        assert other.root == other_root

    def test_clear_cache_resets(self):
        TwiddleTable.get(N, Q)
        assert TwiddleTable.cache_size() > 0
        TwiddleTable.clear_cache()
        assert TwiddleTable.cache_size() == 0


class TestLruBound:
    def _distinct_sizes(self):
        # Three distinct (n, q) pairs sharing nothing.
        return (N, 2 * N, 4 * N)

    def test_eviction_keeps_capacity(self):
        TwiddleTable.set_cache_capacity(2)
        for n in self._distinct_sizes():
            TwiddleTable.get(n, find_ntt_prime(62, 2 * n))
        # Each table also caches its root alias: 2 tables -> <= 4 keys.
        assert TwiddleTable.cache_size() <= 4

    def test_least_recently_used_is_evicted_first(self):
        TwiddleTable.set_cache_capacity(2)
        sizes = self._distinct_sizes()
        first = TwiddleTable.get(sizes[0], find_ntt_prime(62, 2 * sizes[0]))
        TwiddleTable.get(sizes[1], find_ntt_prime(62, 2 * sizes[1]))
        # Touch the first table, making the second the LRU victim.
        assert TwiddleTable.get(sizes[0], find_ntt_prime(62, 2 * sizes[0])) is first
        TwiddleTable.get(sizes[2], find_ntt_prime(62, 2 * sizes[2]))
        assert TwiddleTable.get(sizes[0], find_ntt_prime(62, 2 * sizes[0])) is first

    def test_alias_keys_do_not_consume_extra_slots(self):
        TwiddleTable.set_cache_capacity(1)
        table = TwiddleTable.get(N, Q)
        # The (root=0, resolved-root) alias pair is one table, not two.
        assert TwiddleTable.get(N, Q, table.root) is table

    def test_evictions_are_metered(self):
        TwiddleTable.set_cache_capacity(1)
        with observing() as session:
            for n in self._distinct_sizes():
                TwiddleTable.get(n, find_ntt_prime(62, 2 * n))
            assert session.metrics.get("twiddle.evictions").value == 2

    def test_shrinking_capacity_evicts_immediately(self):
        for n in self._distinct_sizes():
            TwiddleTable.get(n, find_ntt_prime(62, 2 * n))
        TwiddleTable.set_cache_capacity(1)
        assert TwiddleTable.cache_size() <= 2
        assert TwiddleTable.cache_capacity() == 1

    def test_capacity_validation(self):
        with pytest.raises(NttParameterError):
            TwiddleTable.set_cache_capacity(0)


class TestConstructionSitesShareTables:
    def test_simd_and_fast_plans_share_one_table(self):
        simd = SimdNtt(N, Q, get_backend("mqx"))
        fast = FastNtt(N, Q)
        assert simd.table is fast.table

    def test_repeated_plans_do_not_grow_cache(self):
        SimdNtt(N, Q, get_backend("mqx"))
        size = TwiddleTable.cache_size()
        for _ in range(3):
            FastNtt(N, Q)
            SimdNtt(N, Q, get_backend("scalar"))
        assert TwiddleTable.cache_size() == size
