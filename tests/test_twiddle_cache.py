"""Tests for the process-wide memoized TwiddleTable cache.

``TwiddleTable.get`` must return one shared table per ``(n, q, root)``
across every NTT wrapper construction site, so building many plans over
the same modulus (the RNS pipeline, the repro.par workers) pays the
root-finding and table construction once.
"""

import pytest

from repro.arith.primes import find_ntt_prime
from repro.fast.ntt import FastNtt
from repro.kernels import get_backend
from repro.ntt.simd import SimdNtt
from repro.ntt.twiddles import TwiddleTable

N = 16
Q = find_ntt_prime(62, 2 * N)


@pytest.fixture(autouse=True)
def fresh_cache():
    TwiddleTable.clear_cache()
    yield
    TwiddleTable.clear_cache()


class TestTwiddleTableGet:
    def test_memoizes_identical_parameters(self):
        assert TwiddleTable.get(N, Q) is TwiddleTable.get(N, Q)

    def test_resolved_root_aliases_default_request(self):
        table = TwiddleTable.get(N, Q)
        assert TwiddleTable.get(N, Q, table.root) is table

    def test_distinct_roots_get_distinct_tables(self):
        table = TwiddleTable.get(N, Q)
        # Any odd power of a primitive n-th root is another primitive root.
        other_root = pow(table.root, 3, Q)
        assert other_root != table.root
        other = TwiddleTable.get(N, Q, other_root)
        assert other is not table
        assert other.root == other_root

    def test_clear_cache_resets(self):
        TwiddleTable.get(N, Q)
        assert TwiddleTable.cache_size() > 0
        TwiddleTable.clear_cache()
        assert TwiddleTable.cache_size() == 0


class TestConstructionSitesShareTables:
    def test_simd_and_fast_plans_share_one_table(self):
        simd = SimdNtt(N, Q, get_backend("mqx"))
        fast = FastNtt(N, Q)
        assert simd.table is fast.table

    def test_repeated_plans_do_not_grow_cache(self):
        SimdNtt(N, Q, get_backend("mqx"))
        size = TwiddleTable.cache_size()
        for _ in range(3):
            FastNtt(N, Q)
            SimdNtt(N, Q, get_backend("scalar"))
        assert TwiddleTable.cache_size() == size
