"""OpenMetrics exposition: mangling, escaping, buckets, validator, HTTP."""

import math
import urllib.request

import pytest

from repro.errors import ObservabilityError
from repro.obs.metrics import MetricsRegistry
from repro.obs.openmetrics import (
    CONTENT_TYPE,
    OpenMetricsExporter,
    escape_help,
    escape_label_value,
    format_value,
    histogram_buckets,
    mangle_name,
    render_openmetrics,
    validate_openmetrics,
)
from repro.obs.session import observing


def _populated_registry() -> MetricsRegistry:
    m = MetricsRegistry()
    m.counter("par.shards.dispatched").inc(10)
    m.counter("par.slot.0.busy_s").inc(1.5)
    m.counter("par.slot.1.busy_s").inc(2.25)
    m.counter("isa.ops.vpmuludq").inc(7)
    m.counter("cache.access.L1").inc(3)
    m.counter("engine.fast.calls.ntt.forward").inc(4)
    m.gauge("par.slot.0.cache.plans").set(3)
    h = m.histogram("par.worker.compute_s")
    for value in (0.0005, 0.002, 0.03, 0.4):
        h.observe(value)
    return m


class TestNameMangling:
    def test_plain_dotted_name(self):
        family, labels = mangle_name("par.shards.dispatched")
        assert family == "repro_par_shards_dispatched"
        assert labels == {}

    def test_slot_number_lifted_to_label(self):
        family, labels = mangle_name("par.slot.3.busy_s")
        assert family == "repro_par_slot_busy_s"
        assert labels == {"slot": "3"}

    def test_isa_mnemonic_lifted_to_label(self):
        family, labels = mangle_name("isa.ops.vpmadd52luq")
        assert family == "repro_isa_ops"
        assert labels == {"op": "vpmadd52luq"}

    def test_engine_call_gets_engine_and_op_labels(self):
        family, labels = mangle_name("engine.fast.calls.ntt.forward")
        assert family == "repro_engine_calls"
        assert labels == {"engine": "fast", "op": "ntt.forward"}

    def test_degraded_reason_label(self):
        family, labels = mangle_name("resil.degraded.breaker_open")
        assert family == "repro_resil_degraded_by_reason"
        assert labels == {"reason": "breaker_open"}

    def test_mangled_name_matches_charset(self):
        family, _ = mangle_name("weird-name.with%chars")
        assert all(c.isalnum() or c in "_:" for c in family)


class TestEscaping:
    def test_label_backslash_quote_newline(self):
        assert escape_label_value('a\\b"c\nd') == 'a\\\\b\\"c\\nd'

    def test_help_backslash_newline(self):
        assert escape_help("two\nlines\\slash") == "two\\nlines\\\\slash"

    def test_escaped_label_value_survives_validation(self):
        m = MetricsRegistry()
        m.counter('isa.ops.evil"op').inc(1)
        text = render_openmetrics(m)
        validate_openmetrics(text)
        assert '\\"' in text

    def test_format_value_rejects_non_finite(self):
        with pytest.raises(ObservabilityError):
            format_value(float("nan"))
        with pytest.raises(ObservabilityError):
            format_value(float("inf"))


class TestRendering:
    def test_counter_sample_has_total_suffix(self):
        text = render_openmetrics(_populated_registry())
        assert "repro_par_shards_dispatched_total 10" in text
        validate_openmetrics(text)

    def test_ends_with_eof(self):
        text = render_openmetrics(_populated_registry())
        assert text.endswith("# EOF\n")

    def test_type_precedes_samples(self):
        text = render_openmetrics(_populated_registry())
        lines = text.splitlines()
        type_at = lines.index("# TYPE repro_par_slot_busy_s counter")
        sample_at = next(
            i for i, l in enumerate(lines)
            if l.startswith("repro_par_slot_busy_s_total")
        )
        assert type_at < sample_at

    def test_slot_label_series_share_one_family(self):
        text = render_openmetrics(_populated_registry())
        assert 'repro_par_slot_busy_s_total{slot="0"} 1.5' in text
        assert 'repro_par_slot_busy_s_total{slot="1"} 2.25' in text
        assert text.count("# TYPE repro_par_slot_busy_s ") == 1

    def test_histogram_emits_bucket_count_sum(self):
        text = render_openmetrics(_populated_registry())
        assert 'repro_par_worker_compute_s_bucket{le="+Inf"} 4' in text
        assert "repro_par_worker_compute_s_count 4" in text
        assert "repro_par_worker_compute_s_sum" in text

    def test_empty_registry_renders_bare_eof(self):
        assert render_openmetrics(MetricsRegistry()) == "# EOF\n"


class TestHistogramBuckets:
    def test_exact_cumulative_counts(self):
        m = MetricsRegistry()
        h = m.histogram("x_s")
        for value in (0.5, 1.5, 2.5):
            h.observe(value)
        buckets = histogram_buckets(h, bounds=(1.0, 2.0))
        assert buckets == [(1.0, 1), (2.0, 2), (math.inf, 3)]

    def test_monotone_after_reservoir_sampling(self):
        m = MetricsRegistry()
        h = m.histogram("x_s")
        for i in range(10_000):
            h.observe(i / 1000.0)
        assert h.sampled
        buckets = histogram_buckets(h)
        counts = [count for _, count in buckets]
        assert counts == sorted(counts)
        assert buckets[-1] == (math.inf, 10_000)

    def test_scaled_counts_never_exceed_total(self):
        m = MetricsRegistry()
        h = m.histogram("x_s")
        for _ in range(9_000):
            h.observe(1e-6)  # everything lands below the first bound
        assert h.sampled
        for _, count in histogram_buckets(h):
            assert count <= h.count

    def test_sampled_rendering_still_validates(self):
        m = MetricsRegistry()
        h = m.histogram("big_s")
        for i in range(8_192):
            h.observe((i % 100) / 10.0)
        text = render_openmetrics(m)
        validate_openmetrics(text)


class TestValidator:
    def test_missing_eof_rejected(self):
        with pytest.raises(ObservabilityError, match="EOF"):
            validate_openmetrics("repro_x_total 1\n")

    def test_sample_without_type_rejected(self):
        with pytest.raises(ObservabilityError, match="no preceding TYPE"):
            validate_openmetrics("repro_x_total 1\n# EOF")

    def test_counter_without_total_suffix_rejected(self):
        text = "# TYPE repro_x counter\nrepro_x 1\n# EOF"
        with pytest.raises(ObservabilityError, match="_total"):
            validate_openmetrics(text)

    def test_non_monotone_buckets_rejected(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 5\n'
            'repro_h_bucket{le="2"} 3\n'
            'repro_h_bucket{le="+Inf"} 5\n'
            "repro_h_count 5\n"
            "repro_h_sum 1\n"
            "# EOF"
        )
        with pytest.raises(ObservabilityError, match="monotone"):
            validate_openmetrics(text)

    def test_inf_bucket_must_equal_count(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="+Inf"} 4\n'
            "repro_h_count 5\n"
            "repro_h_sum 1\n"
            "# EOF"
        )
        with pytest.raises(ObservabilityError, match="count"):
            validate_openmetrics(text)

    def test_invalid_metric_name_rejected(self):
        text = "# TYPE 9bad counter\n# EOF"
        with pytest.raises(ObservabilityError, match="invalid family"):
            validate_openmetrics(text)


class TestExporter:
    def test_scrape_matches_render(self):
        m = _populated_registry()
        with OpenMetricsExporter(source=lambda: m) as exporter:
            response = urllib.request.urlopen(exporter.url, timeout=5.0)
            body = response.read().decode("utf-8")
            assert response.headers["Content-Type"] == CONTENT_TYPE
        assert body == render_openmetrics(m)
        validate_openmetrics(body)

    def test_default_source_follows_live_session(self):
        with OpenMetricsExporter() as exporter:
            idle = urllib.request.urlopen(exporter.url, timeout=5.0).read()
            assert idle.decode() == "# EOF\n"
            with observing() as session:
                session.metrics.counter("live.scrapes").inc(2)
                live = urllib.request.urlopen(
                    exporter.url, timeout=5.0
                ).read().decode()
            assert "repro_live_scrapes_total 2" in live

    def test_unknown_path_is_404(self):
        with OpenMetricsExporter(source=MetricsRegistry) as exporter:
            url = exporter.url.replace("/metrics", "/nope")
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(url, timeout=5.0)
