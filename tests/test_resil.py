"""Tests for repro.resil: fault injection, policies, integrity, degradation.

The headline property, mirrored from docs/RESILIENCE.md: **any**
deterministic :class:`FaultPlan` — crashes, corrupt payloads, slow
stragglers, in any placement — yields results bit-identical to the fast
engine, because every fault either retries clean or degrades to the
in-process fallback. The rest covers the policy primitives (retry
backoff, deadlines, the circuit breaker state machine), checksum
integrity, the engine cascade, defensive shm reclamation, and the
stale-generation dedup that prevents double-counted shards.
"""

import random
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arith.primes import find_ntt_prime
from repro.errors import ResilienceError, ResilIntegrityError
from repro.fast.blas import FastBlasPlan
from repro.fast.ntt import FastNtt
from repro.kernels import get_backend
from repro.obs import observing
from repro.par import ParallelExecutor, ParBlasPlan, ParNtt, shm
from repro.resil import (
    CircuitBreaker,
    Deadline,
    EngineDegradedWarning,
    Fault,
    FaultPlan,
    RetryPolicy,
)
from repro.resil import degrade
from repro.resil.inject import strip_transient_fault
from repro.resil.policy import BREAKER_STATES

N = 16
Q = find_ntt_prime(62, 2 * N)


def _vectors(seed, count=4, n=N, q=Q):
    rng = random.Random(seed)
    return [[rng.randrange(q) for _ in range(n)] for _ in range(count)]


@pytest.fixture(scope="module")
def pool():
    # A breaker that never trips: these tests exercise faults in volume,
    # and a module-shared pool must keep dispatching through all of them.
    executor = ParallelExecutor(
        workers=2,
        task_timeout=20.0,
        breaker=CircuitBreaker(failure_threshold=10_000),
    )
    executor.start()
    yield executor
    executor.close()


@pytest.fixture(autouse=True)
def clean_degrade_state():
    degrade.note_pool_start_success()
    yield
    degrade.note_pool_start_success()


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


# ---------------------------------------------------------------------------
# Policies
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    def test_should_retry_bounds_attempts(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.should_retry(1) and policy.should_retry(2)
        assert not policy.should_retry(3)

    def test_zero_base_delay_means_immediate(self):
        assert RetryPolicy(base_delay_s=0.0).delay_s(1) == 0.0

    def test_exponential_growth_with_clamp(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay_s=0.1, multiplier=2.0, max_delay_s=0.3
        )
        assert policy.delay_s(1) == pytest.approx(0.1)
        assert policy.delay_s(2) == pytest.approx(0.2)
        assert policy.delay_s(3) == pytest.approx(0.3)  # clamped
        assert policy.delay_s(4) == pytest.approx(0.3)

    def test_jitter_is_deterministic_per_seed(self):
        a = RetryPolicy(base_delay_s=0.1, jitter=0.5, seed=7)
        b = RetryPolicy(base_delay_s=0.1, jitter=0.5, seed=7)
        c = RetryPolicy(base_delay_s=0.1, jitter=0.5, seed=8)
        assert a.delay_s(1) == b.delay_s(1)
        assert a.delay_s(1) != c.delay_s(1)
        assert 0.05 <= a.delay_s(1) <= 0.15

    def test_validation(self):
        with pytest.raises(ResilienceError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ResilienceError):
            RetryPolicy(base_delay_s=-1)
        with pytest.raises(ResilienceError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ResilienceError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ResilienceError):
            RetryPolicy().delay_s(0)


class TestDeadline:
    def test_expires_exactly_at_budget(self):
        clock = FakeClock()
        deadline = Deadline(5.0, clock=clock)
        assert not deadline.expired()
        assert deadline.remaining_s() == pytest.approx(5.0)
        clock.now += 5.0
        assert deadline.expired()
        assert deadline.remaining_s() == 0.0

    def test_rejects_non_positive_budget(self):
        with pytest.raises(ResilienceError):
            Deadline(0.0)


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown_s=10.0)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_allows_single_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=5.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.now += 5.0
        assert breaker.state == "half_open"
        assert breaker.allow()       # the probe
        assert not breaker.allow()   # everyone else waits on it

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=5.0, clock=clock)
        breaker.record_failure()
        clock.now += 5.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"

    def test_probe_failure_reopens_and_restarts_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=5.0, clock=clock)
        breaker.record_failure()
        clock.now += 5.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        clock.now += 4.0
        assert breaker.state == "open"  # cooldown restarted at the probe
        clock.now += 1.0
        assert breaker.state == "half_open"

    def test_transitions_are_reported(self):
        clock = FakeClock()
        seen = []
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_s=5.0, clock=clock,
            on_transition=seen.append,
        )
        breaker.record_failure()
        clock.now += 5.0
        breaker.allow()
        breaker.record_success()
        assert seen == ["open", "half_open", "closed"]
        assert all(state in BREAKER_STATES for state in seen)

    def test_validation(self):
        with pytest.raises(ResilienceError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ResilienceError):
            CircuitBreaker(cooldown_s=-1)

    def test_half_open_single_probe_under_contention(self):
        """Racing allow() callers admit exactly one half-open probe.

        This is the serve-layer race: the dispatcher thread and the
        event-loop thread both consult the breaker. Unsynchronized,
        two callers could read ``_probe_outstanding == False`` and
        double-admit the probe.
        """
        import threading

        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=5.0, clock=clock)
        breaker.record_failure()
        clock.now += 5.0
        admitted = []
        barrier = threading.Barrier(8)

        def probe():
            barrier.wait()
            admitted.append(breaker.allow())

        threads = [threading.Thread(target=probe) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sum(admitted) == 1

    def test_concurrent_records_keep_state_valid(self):
        """Hammering record_failure/record_success from threads never
        corrupts the state machine or loses the trip."""
        import threading

        breaker = CircuitBreaker(failure_threshold=3, cooldown_s=3600.0)
        barrier = threading.Barrier(6)

        def fail_loop():
            barrier.wait()
            for _ in range(200):
                breaker.record_failure()

        threads = [threading.Thread(target=fail_loop) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert breaker.state == "open"
        assert breaker.consecutive_failures >= 3
        assert breaker.state in BREAKER_STATES

    def test_deadline_thread_safe_reads(self):
        """Concurrent remaining_s/expired reads race the lock cleanly."""
        import threading

        clock = FakeClock()
        deadline = Deadline(budget_s=1.0, clock=clock)
        errors = []

        def poll():
            try:
                for _ in range(500):
                    deadline.remaining_s()
                    deadline.expired()
            except Exception as exc:  # pragma: no cover — the failure mode
                errors.append(exc)

        threads = [threading.Thread(target=poll) for _ in range(4)]
        for t in threads:
            t.start()
        clock.now += 2.0
        for t in threads:
            t.join()
        assert not errors
        assert deadline.expired()


# ---------------------------------------------------------------------------
# Fault plans
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_fault_validation(self):
        with pytest.raises(ResilienceError):
            Fault("meteor")
        with pytest.raises(ResilienceError):
            Fault("hang", seconds=-1)
        with pytest.raises(ResilienceError):
            FaultPlan({-1: Fault("crash")})
        with pytest.raises(ResilienceError):
            FaultPlan({0: "crash"})

    def test_random_plan_is_deterministic(self):
        a = FaultPlan.random(5, 64, crash=0.3, corrupt=0.3, slow=0.2)
        b = FaultPlan.random(5, 64, crash=0.3, corrupt=0.3, slow=0.2)
        assert {i: a.fault_for(i) for i in a} == {i: b.fault_for(i) for i in b}
        assert len(a) > 0

    def test_counts_and_precedence(self):
        plan = FaultPlan.random(1, 32, crash=1.0, hang=1.0, corrupt=1.0)
        assert plan.counts()["crash"] == 32  # crash outranks the others
        assert len(plan) == 32

    def test_strip_transient_fault(self):
        spec = {"op": "ntt", "fault": Fault("crash").to_spec()}
        assert "fault" not in strip_transient_fault(spec)
        assert "fault" in spec  # original untouched
        sticky = {"op": "ntt", "fault": Fault("crash", sticky=True).to_spec()}
        assert "fault" in strip_transient_fault(sticky)


# ---------------------------------------------------------------------------
# Integrity
# ---------------------------------------------------------------------------


class TestIntegrity:
    def _segment_with(self, batch):
        import numpy as np

        from repro.fast.limbs import limbs_from_ints

        arr = limbs_from_ints(batch)
        seg, view = shm.create_segment(arr.shape)
        view[...] = arr
        return seg, view, arr.shape

    def test_checksum_roundtrip_and_headers(self):
        import numpy as np

        from repro.resil.integrity import shard_checksum

        _seg, view, shape = self._segment_with(_vectors(20))
        try:
            crc = shard_checksum(view, (0, 2), shape)
            assert crc == shard_checksum(view, (0, 2), shape)
            # Geometry is part of the checksum, not just the bytes.
            assert crc != shard_checksum(view, (0, 1), shape)
            view[0, 0, 0] ^= np.uint64(1)
            assert crc != shard_checksum(view, (0, 2), shape)
        finally:
            del view
            shm.release_segment(_seg)

    def test_audit_passes_on_correct_results_and_catches_corruption(self):
        import numpy as np

        from repro.resil.integrity import audit_shards

        n, q = 8, find_ntt_prime(62, 16)
        batch = _vectors(21, count=2, n=n, q=q)
        fast = FastNtt(n, q)
        x_seg, x_view, shape = self._segment_with(batch)
        out_seg, out_view, _ = self._segment_with(fast.forward(batch))
        spec = {
            "op": "ntt", "n": n, "q": q, "root": fast.table.root,
            "direction": "forward", "natural_order": True,
            "shape": list(shape), "rows": [0, 2],
            "x": x_seg.name, "out": out_seg.name, "shard_index": 0,
        }
        try:
            assert audit_shards([spec], 1.0) == 1
            out_view[1, 3, 0] ^= np.uint64(1)
            with pytest.raises(ResilIntegrityError):
                audit_shards([spec], 1.0)
        finally:
            del x_view, out_view
            shm.release_segment(x_seg)
            shm.release_segment(out_seg)

    def test_sample_specs_is_seeded_and_never_empty(self):
        from repro.resil.integrity import sample_specs

        specs = [{"i": i} for i in range(20)]
        assert sample_specs(specs, 0.3, 4) == sample_specs(specs, 0.3, 4)
        assert sample_specs(specs, 0.0, 4) == []
        assert len(sample_specs(specs, 1e-9, 4)) == 1  # at least one
        with pytest.raises(ResilienceError):
            sample_specs(specs, 1.5, 0)

    def test_corrupt_fault_is_detected_and_retried(self):
        batch = _vectors(22)
        expected = FastNtt(N, Q).forward(batch)
        with observing() as session:
            with ParallelExecutor(workers=2, task_timeout=20.0) as executor:
                plan = ParNtt(N, Q, executor=executor)
                executor.inject(FaultPlan({0: Fault("corrupt")}))
                assert plan.forward(batch) == expected
                assert executor.stats["corrupt"] == 1
                assert executor.stats["retries"] == 1
            assert session.metrics.get("par.integrity.corrupt").value == 1

    def test_audit_runs_on_sampled_fraction(self, pool):
        batch = _vectors(23)
        executor = ParallelExecutor(
            workers=1, task_timeout=20.0, audit_fraction=1.0
        )
        with observing() as session:
            with executor:
                plan = ParNtt(N, Q, executor=executor)
                assert plan.forward(batch) == FastNtt(N, Q).forward(batch)
            assert executor.stats["audited"] >= 1
            assert session.metrics.get("par.integrity.audited").value >= 1

    def test_integrity_disabled_skips_checksums(self):
        batch = _vectors(24)
        with ParallelExecutor(workers=1, integrity=False) as executor:
            plan = ParNtt(N, Q, executor=executor)
            assert plan.forward(batch) == FastNtt(N, Q).forward(batch)


# ---------------------------------------------------------------------------
# Fault tolerance through the executor (the headline property)
# ---------------------------------------------------------------------------


class TestFaultPlanExecution:
    def test_crash_fault_recovers_bit_exact(self, pool):
        batch = _vectors(30)
        plan = ParNtt(N, Q, executor=pool)
        before = pool.stats["retries"]
        pool.inject(FaultPlan({0: Fault("crash")}))
        try:
            assert plan.forward(batch) == FastNtt(N, Q).forward(batch)
        finally:
            pool.inject(None)
        assert pool.stats["retries"] == before + 1

    def test_slow_fault_still_completes(self, pool):
        batch = _vectors(31)
        plan = ParNtt(N, Q, executor=pool)
        pool.inject(FaultPlan({0: Fault("slow", seconds=0.05)}))
        try:
            assert plan.forward(batch) == FastNtt(N, Q).forward(batch)
        finally:
            pool.inject(None)

    @settings(deadline=None, max_examples=6)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        crash=st.floats(min_value=0.0, max_value=0.5),
        corrupt=st.floats(min_value=0.0, max_value=0.5),
        slow=st.floats(min_value=0.0, max_value=0.3),
    )
    def test_any_fault_plan_is_bit_exact(self, pool, seed, crash, corrupt, slow):
        # Runs under an observability session: cross-process telemetry
        # (context headers, worker blobs, parent-side merge) must never
        # perturb results, whatever faults the plan injects.
        batch = _vectors(seed, count=4)
        plan = ParNtt(N, Q, executor=pool)
        blas = ParBlasPlan(Q, executor=pool)
        pool.inject(FaultPlan.random(
            seed, 16, crash=crash, corrupt=corrupt, slow=slow, slow_s=0.02
        ))
        try:
            with observing():
                assert plan.forward(batch) == FastNtt(N, Q).forward(batch)
                assert blas.vector_mul(batch, batch) == FastBlasPlan(
                    Q
                ).vector_mul(batch, batch)
        finally:
            pool.inject(None)

    def test_retry_backoff_delays_are_applied(self):
        batch = _vectors(32, count=2)
        policy = RetryPolicy(max_attempts=2, base_delay_s=0.05, jitter=0.0)
        with ParallelExecutor(
            workers=1, task_timeout=20.0, retry_policy=policy
        ) as executor:
            plan = ParNtt(N, Q, executor=executor)
            executor.inject(FaultPlan({0: Fault("crash")}))
            started = time.monotonic()
            assert plan.forward(batch) == FastNtt(N, Q).forward(batch)
            assert time.monotonic() - started >= 0.05
            assert executor.stats["retries"] == 1

    def test_stale_generation_results_are_discarded(self):
        # Forge a completion for a superseded generation: it must be
        # counted as stale and never satisfy the shard (the single
        # writer whose generation matches does).
        batch = _vectors(33, count=2)
        with observing() as session:
            with ParallelExecutor(workers=1, task_timeout=20.0) as executor:
                forged = executor._next_id  # the next batch's first task id
                executor.start()
                executor._results.put(("done", forged, 99, 0, 0.0))
                plan = ParNtt(N, Q, executor=executor)
                assert plan.forward(batch) == FastNtt(N, Q).forward(batch)
                assert executor.stats["stale"] == 1
            assert session.metrics.get("par.stale_results").value == 1


class TestDeadlineExecution:
    def test_expired_deadline_short_circuits_in_process(self):
        batch = _vectors(34)
        with observing() as session:
            with ParallelExecutor(
                workers=2, task_timeout=20.0, batch_deadline_s=1e-9
            ) as executor:
                plan = ParNtt(N, Q, executor=executor)
                assert plan.forward(batch) == FastNtt(N, Q).forward(batch)
                assert executor.stats["deadline_expired"] >= 1
                assert executor.stats["fallbacks"] >= 1
            assert session.metrics.get("resil.deadline.expired").value >= 1

    def test_deadline_validation(self):
        from repro.errors import ParallelExecutionError

        with pytest.raises(ParallelExecutionError):
            ParallelExecutor(batch_deadline_s=0.0)
        with pytest.raises(ParallelExecutionError):
            ParallelExecutor(audit_fraction=2.0)


class TestBreakerExecution:
    def test_breaker_trips_degrades_and_recovers(self):
        batch = _vectors(35)
        expected = FastNtt(N, Q).forward(batch)
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=2, cooldown_s=30.0, clock=clock
        )
        with observing() as session:
            with ParallelExecutor(
                workers=2, task_timeout=20.0, retries=0, breaker=breaker
            ) as executor:
                plan = ParNtt(N, Q, executor=executor)
                # Both shards crash with no retry budget: two consecutive
                # failures trip the breaker (results still exact via the
                # in-process fallback).
                executor.inject(FaultPlan({
                    0: Fault("crash", sticky=True),
                    1: Fault("crash", sticky=True),
                }))
                assert plan.forward(batch) == expected
                executor.inject(None)
                assert breaker.state == "open"

                # Open: the whole batch routes around the pool.
                dispatched_completed = executor.stats["completed"]
                assert plan.forward(batch) == expected
                assert executor.stats["degraded"] >= 2
                assert executor.stats["completed"] == dispatched_completed
                assert (
                    session.metrics.get("resil.degraded.breaker_open").value
                    >= 1
                )

                # Cooldown elapses: the next batch is the half-open probe,
                # and its success closes the breaker.
                clock.now += 30.0
                assert breaker.state == "half_open"
                assert plan.forward(batch) == expected
                assert breaker.state == "closed"

    def test_open_default_breaker_degrades_new_construction_sites(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=60.0, clock=clock)
        with ParallelExecutor(workers=1, breaker=breaker) as executor:
            breaker.record_failure()
            assert breaker.state == "open"
            with pytest.warns(EngineDegradedWarning):
                resolved = degrade.resolve_engine("parallel")
            assert resolved == "fast"


# ---------------------------------------------------------------------------
# Engine cascade
# ---------------------------------------------------------------------------


class TestEngineCascade:
    def test_identity_when_available(self):
        assert degrade.resolve_engine("faithful") == "faithful"
        assert degrade.resolve_engine("fast") == "fast"

    def test_disable_parallel_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_PARALLEL", "1")
        with pytest.warns(EngineDegradedWarning):
            assert degrade.resolve_engine("parallel") == "fast"

    def test_missing_numpy_degrades_to_faithful(self, monkeypatch):
        monkeypatch.setenv("REPRO_FORCE_NO_NUMPY", "1")
        with pytest.warns(EngineDegradedWarning):
            assert degrade.resolve_engine("parallel") == "faithful"
        with pytest.warns(EngineDegradedWarning):
            assert degrade.resolve_engine("fast") == "faithful"

    def test_pool_start_failure_window(self):
        degrade.note_pool_start_failure()
        with pytest.warns(EngineDegradedWarning):
            assert degrade.resolve_engine("parallel") == "fast"
        degrade.note_pool_start_success()
        assert degrade.resolve_engine("parallel") == "parallel"

    def test_plan_construction_sites_never_hard_fail(self, monkeypatch):
        from repro.blas.ops import BlasPlan
        from repro.ntt.negacyclic import NegacyclicNtt
        from repro.ntt.simd import SimdNtt
        from repro.rns.basis import RnsBasis
        from repro.rns.poly import RnsPolynomialRing

        monkeypatch.setenv("REPRO_DISABLE_PARALLEL", "1")
        backend = get_backend("mqx")
        with pytest.warns(EngineDegradedWarning):
            ntt = SimdNtt(N, Q, backend, engine="parallel")
        assert ntt.engine == "fast" and ntt.par_plan is None
        assert ntt.fast_plan is not None
        with pytest.warns(EngineDegradedWarning):
            neg = NegacyclicNtt(N, Q, backend, engine="parallel")
        assert neg.engine == "fast" and neg.par_plan is None
        with pytest.warns(EngineDegradedWarning):
            blas = BlasPlan(Q, backend, engine="parallel")
        assert blas.engine == "fast" and blas.par_plan is None
        with pytest.warns(EngineDegradedWarning):
            ring = RnsPolynomialRing(
                N, RnsBasis.generate(2, 62, 2 * N), backend, engine="parallel"
            )
        assert ring.engine == "fast"
        # The degraded ring must not dispatch the fused pool batch.
        f = ring.encode([1] + [0] * (N - 1))
        assert ring.mul(f, f).residues == f.residues

    def test_invalid_engine_names_still_raise(self):
        from repro.errors import NttParameterError
        from repro.ntt.simd import SimdNtt

        with pytest.raises(NttParameterError):
            SimdNtt(N, Q, get_backend("mqx"), engine="bogus")

    def test_pool_start_failure_degrades_batch_in_process(self, monkeypatch):
        batch = _vectors(36)
        executor = ParallelExecutor(workers=1)

        def boom(*args, **kwargs):
            raise OSError("fork refused")

        monkeypatch.setattr(executor, "_spawn", boom)
        with observing() as session:
            try:
                plan = ParNtt(N, Q, executor=executor)
                assert plan.forward(batch) == FastNtt(N, Q).forward(batch)
                assert executor.stats["degraded"] >= 1
                metric = session.metrics.get("resil.degraded.pool_start_failed")
                assert metric is not None and metric.value >= 1
            finally:
                executor.close()
                degrade.note_pool_start_success()


# ---------------------------------------------------------------------------
# Defensive shm reclamation
# ---------------------------------------------------------------------------


class TestDefensiveClose:
    def test_close_reclaims_segments_named_in_specs(self):
        seg, view = shm.create_segment((2, 4, 2))
        del view
        executor = ParallelExecutor(workers=1)
        executor._track_segments([{"x": seg.name}])
        assert shm.is_created(seg.name)
        with observing() as session:
            executor.close()
            assert session.metrics.get("par.shm.reclaimed").value == 1
        assert not shm.is_created(seg.name)
        assert executor.stats["shm_reclaimed"] == 1

    def test_close_ignores_already_released_segments(self):
        seg, view = shm.create_segment((2, 2))
        del view
        executor = ParallelExecutor(workers=1)
        executor._track_segments([{"x": seg.name}])
        shm.release_segment(seg)
        executor.close()  # must not raise or double-release
        assert executor.stats["shm_reclaimed"] == 0

    def test_normal_runs_leave_nothing_to_reclaim(self, pool):
        ParNtt(N, Q, executor=pool).forward(_vectors(37))
        assert shm.created_segments() == 0


# ---------------------------------------------------------------------------
# Chaos harness (programmatic smoke; the CLI runs the full gauntlet)
# ---------------------------------------------------------------------------


class TestChaosHarness:
    def test_chaos_run_passes(self):
        from repro.resil.chaos import run_chaos

        lines = []
        code = run_chaos(
            workers=2, seed=0, logn=4, batch=4, limbs=2,
            crash=0.2, corrupt=0.2, slow=0.1, task_timeout=5.0,
            rounds=1, emit=lines.append,
        )
        assert code == 0, "\n".join(lines)
        assert any("checks passed" in line for line in lines)
