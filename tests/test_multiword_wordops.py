"""Direct semantics tests for the word-operation adapters.

Every adapter operation must match scalar 64-bit semantics lane-wise on
every backend - the contract the multi-word, special-prime and IFMA
layers all build on.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BackendError
from repro.kernels import get_backend
from repro.multiword.wordops import word_ops_for

from tests.conftest import ALL_BACKEND_NAMES

MASK64 = (1 << 64) - 1
U64 = st.integers(min_value=0, max_value=MASK64)


def _ops(name):
    return word_ops_for(get_backend(name))


def _load(ops, value):
    return ops.load([value] * ops.lanes)


@pytest.fixture(params=ALL_BACKEND_NAMES)
def ops(request):
    return _ops(request.param)


class TestDataMovement:
    def test_load_store_roundtrip(self, ops, rng):
        values = [rng.randrange(1 << 64) for _ in range(ops.lanes)]
        reg = ops.load(values)
        assert ops.store(reg) == values
        assert ops.values(reg) == values

    def test_broadcast(self, ops):
        reg = ops.broadcast(0xDEAD)
        assert ops.values(reg) == [0xDEAD] * ops.lanes

    def test_zero(self, ops):
        assert ops.values(ops.zero) == [0] * ops.lanes


class TestCarries:
    @given(U64, U64)
    @settings(max_examples=25, deadline=None)
    def test_add_carry_out(self, a, b):
        for name in ALL_BACKEND_NAMES:
            ops = _ops(name)
            total, carry = ops.add_carry_out(_load(ops, a), _load(ops, b))
            assert ops.values(total) == [(a + b) & MASK64] * ops.lanes

    @given(U64, U64)
    @settings(max_examples=25, deadline=None)
    def test_adc_chains(self, a, b):
        for name in ALL_BACKEND_NAMES:
            ops = _ops(name)
            _, carry = ops.add_carry_out(
                _load(ops, MASK64), _load(ops, 1)
            )  # carry set everywhere
            total, carry_out = ops.adc(_load(ops, a), _load(ops, b), carry)
            assert ops.values(total) == [(a + b + 1) & MASK64] * ops.lanes
            nocout = ops.add_nocarry(_load(ops, a), _load(ops, b), carry)
            assert ops.values(nocout) == [(a + b + 1) & MASK64] * ops.lanes

    def test_adc_edge_all_ones(self):
        """The blind spot hypothesis found in Table 1's pattern: robust here."""
        for name in ALL_BACKEND_NAMES:
            ops = _ops(name)
            _, carry = ops.add_carry_out(_load(ops, MASK64), _load(ops, 1))
            total, carry_out = ops.adc(
                _load(ops, MASK64), _load(ops, MASK64), carry
            )
            assert ops.values(total) == [MASK64] * ops.lanes
            # carry_out must be set in every lane; verify via an adc probe.
            probe, _ = ops.adc(ops.zero, ops.zero, carry_out)
            assert ops.values(probe) == [1] * ops.lanes, name

    @given(U64, U64)
    @settings(max_examples=25, deadline=None)
    def test_sbb_chains(self, a, b):
        for name in ALL_BACKEND_NAMES:
            ops = _ops(name)
            _, borrow = ops.sub_borrow_out(ops.zero, _load(ops, 1))
            diff, _ = ops.sbb(_load(ops, a), _load(ops, b), borrow)
            assert ops.values(diff) == [(a - b - 1) & MASK64] * ops.lanes
            nobout = ops.sub_noborrow(_load(ops, a), _load(ops, b), borrow)
            assert ops.values(nobout) == [(a - b - 1) & MASK64] * ops.lanes


class TestMultiplyShift:
    @given(U64, U64)
    @settings(max_examples=25, deadline=None)
    def test_wide_mul(self, a, b):
        for name in ALL_BACKEND_NAMES:
            ops = _ops(name)
            hi, lo = ops.wide_mul(_load(ops, a), _load(ops, b))
            assert ops.values(hi) == [(a * b) >> 64] * ops.lanes
            assert ops.values(lo) == [(a * b) & MASK64] * ops.lanes

    @given(U64, U64)
    @settings(max_examples=25, deadline=None)
    def test_mullo(self, a, b):
        for name in ALL_BACKEND_NAMES:
            ops = _ops(name)
            out = ops.mullo(_load(ops, a), _load(ops, b))
            assert ops.values(out) == [(a * b) & MASK64] * ops.lanes

    @given(U64, U64, st.integers(min_value=1, max_value=63))
    @settings(max_examples=25, deadline=None)
    def test_shrd_and_shr(self, hi, lo, amount):
        for name in ALL_BACKEND_NAMES:
            ops = _ops(name)
            out = ops.shrd(_load(ops, hi), _load(ops, lo), amount)
            expected = (((hi << 64) | lo) >> amount) & MASK64
            assert ops.values(out) == [expected] * ops.lanes
            assert ops.values(ops.shr(_load(ops, hi), amount)) == [
                hi >> amount
            ] * ops.lanes

    @given(U64, U64)
    @settings(max_examples=25, deadline=None)
    def test_band(self, a, b):
        for name in ALL_BACKEND_NAMES:
            ops = _ops(name)
            out = ops.band(_load(ops, a), _load(ops, b))
            assert ops.values(out) == [a & b] * ops.lanes


class TestConditions:
    def test_select_and_logic(self, ops):
        _, true_cond = ops.add_carry_out(
            _load(ops, MASK64), _load(ops, 1)
        )
        false_cond = ops.zero_cond
        a, b = _load(ops, 7), _load(ops, 9)
        assert ops.values(ops.select(true_cond, a, b)) == [7] * ops.lanes
        assert ops.values(ops.select(false_cond, a, b)) == [9] * ops.lanes
        assert ops.values(
            ops.select(ops.cond_not(true_cond), a, b)
        ) == [9] * ops.lanes
        either = ops.cond_or(true_cond, false_cond)
        assert ops.values(ops.select(either, a, b)) == [7] * ops.lanes

    def test_interleave_plane(self, ops, rng):
        even = ops.load([rng.randrange(1 << 64) for _ in range(ops.lanes)])
        odd = ops.load([rng.randrange(1 << 64) for _ in range(ops.lanes)])
        out0, out1 = ops.interleave_plane(even, odd)
        combined = ops.values(out0) + ops.values(out1)
        expected = []
        for e, o in zip(ops.values(even), ops.values(odd)):
            expected.extend([e, o])
        assert combined == expected


class TestAdapterDispatch:
    def test_unknown_backend_rejected(self):
        class FakeBackend:
            name = "fake"

        with pytest.raises(BackendError):
            word_ops_for(FakeBackend())

    def test_mqx_features_flow_through(self):
        from repro.isa.trace import tracing
        from repro.kernels.mqx_backend import FEATURE_PRESETS

        ops = word_ops_for(get_backend("mqx", features=FEATURE_PRESETS["+C"]))
        a = ops.broadcast(5)
        with tracing() as t:
            ops.adc(a, a, ops.zero_cond)
            ops.wide_mul(a, a)
        assert t.count("vpadcq_zmm") == 1  # +C active
        assert t.count("vpmulwq_zmm") == 0  # no widening multiply in +C
