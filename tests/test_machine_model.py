"""Tests for the machine model: CPUs, uop tables, scheduler, cache, MCA."""

import random

import pytest

from repro.errors import MachineModelError, UnknownInstructionError
from repro.isa.trace import TraceEntry, Tracer, tracing
from repro.machine.cache import CacheModel, MemoryTraffic
from repro.machine.cpu import CpuSpec, get_cpu, list_cpus, register_cpu
from repro.machine.mca import pressure_summary, resource_pressure_report
from repro.machine.scheduler import schedule_trace
from repro.machine.uops import SUNNY_COVE, ZEN4, get_microarch


class TestCpuRegistry:
    def test_paper_cpus_present(self):
        keys = list_cpus()
        for key in (
            "intel_xeon_8352y",
            "amd_epyc_9654",
            "intel_xeon_6980p",
            "amd_epyc_9965s",
        ):
            assert key in keys

    def test_table4_specs(self):
        intel = get_cpu("intel_xeon_8352y")
        amd = get_cpu("amd_epyc_9654")
        assert intel.base_ghz == 2.2 and intel.max_ghz == 3.4
        assert amd.base_ghz == 2.4 and amd.max_ghz == 3.7
        assert intel.l3_bytes == 48 * 1024 * 1024
        assert amd.l3_bytes == 384 * 1024 * 1024

    def test_sol_targets(self):
        assert get_cpu("intel_xeon_6980p").cores == 128
        assert get_cpu("intel_xeon_6980p").allcore_ghz == 3.2
        assert get_cpu("amd_epyc_9965s").cores == 192
        assert get_cpu("amd_epyc_9965s").allcore_ghz == 3.35

    def test_unknown_cpu_rejected(self):
        with pytest.raises(MachineModelError):
            get_cpu("pentium3")

    def test_register_custom_cpu(self):
        spec = CpuSpec(
            key="test_custom_cpu",
            name="Test CPU",
            microarch="zen4",
            cores=64,
            base_ghz=2.0,
            max_ghz=3.0,
            allcore_ghz=2.5,
            l1d_bytes=32 * 1024,
            l2_bytes_per_core=1024 * 1024,
            l3_bytes=256 * 1024 * 1024,
            memory="DDR5",
        )
        register_cpu(spec)
        assert get_cpu("test_custom_cpu") is spec
        with pytest.raises(MachineModelError):
            register_cpu(spec)


class TestUopTables:
    def test_lookup_unknown_rejected(self):
        with pytest.raises(UnknownInstructionError):
            SUNNY_COVE.lookup("vfmadd231pd_zmm")

    def test_unknown_microarch_rejected(self):
        with pytest.raises(UnknownInstructionError):
            get_microarch("alder_lake")

    def test_both_tables_cover_same_mnemonics(self):
        assert set(SUNNY_COVE.table) == set(ZEN4.table)

    def test_tables_cover_every_emitted_opcode(self):
        """Run whole kernels and check no opcode is missing from the tables.

        This is the consistency test that keeps the ISA simulator and the
        machine model in lock-step as instructions are added.
        """
        from repro.arith.primes import default_modulus
        from repro.baselines.bignum import GmpContext
        from repro.baselines.openfhe import OpenFheContext
        from repro.kernels import get_backend
        from repro.kernels.mqx_backend import FEATURE_PRESETS

        q = default_modulus()
        rng = random.Random(1)
        tracer = Tracer()
        with tracing() as t:
            for name in ("scalar", "avx2", "avx512", "mqx"):
                be = get_backend(name)
                ctx_s = be.make_modulus(q, algorithm="schoolbook")
                ctx_k = be.make_modulus(q, algorithm="karatsuba")
                a = be.load_block([rng.randrange(q) for _ in range(be.lanes)])
                b = be.load_block([rng.randrange(q) for _ in range(be.lanes)])
                for ctx in (ctx_s, ctx_k):
                    be.store_block(be.addmod(a, b, ctx))
                    be.store_block(be.submod(a, b, ctx))
                    be.store_block(be.mulmod(a, b, ctx))
                be.interleave(a, b)
                be.broadcast_twiddle(rng.randrange(q))
            for label in FEATURE_PRESETS:
                be = get_backend("mqx", features=FEATURE_PRESETS[label])
                ctx = be.make_modulus(q)
                a = be.load_block([rng.randrange(q) for _ in range(8)])
                b = be.load_block([rng.randrange(q) for _ in range(8)])
                be.butterfly(a, b, be.broadcast_dw(3), ctx)
            GmpContext(q).butterfly(1, 2, 3)
            OpenFheContext(q).butterfly(1, 2, 3)
        tracer.extend(t)
        ops = {entry.op for entry in tracer.entries}
        for microarch in (SUNNY_COVE, ZEN4):
            missing = sorted(op for op in ops if op not in microarch.table)
            assert not missing, f"{microarch.name} missing {missing}"

    def test_vpmullq_contrast(self):
        """Zen 4's native vpmullq vs Intel's microcoded one (Section 5.4)."""
        intel = SUNNY_COVE.lookup("vpmullq_zmm")
        amd = ZEN4.lookup("vpmullq_zmm")
        assert intel.uops == 3 and intel.latency == 15
        assert amd.uops == 1 and amd.latency == 3

    def test_pisa_proxies_share_costs(self):
        """MQX mnemonics must carry their Table 3 proxy's characteristics."""
        for microarch in (SUNNY_COVE, ZEN4):
            assert microarch.lookup("vpmulwq_zmm") == microarch.lookup(
                "vpmullq_zmm"
            )
            assert microarch.lookup("vpadcq_zmm") == microarch.lookup(
                "vpaddq_masked_zmm"
            )
            assert microarch.lookup("vpsbbq_zmm") == microarch.lookup(
                "vpsubq_masked_zmm"
            )

    def test_adc_costs_same_as_add(self):
        """Section 4.2's grounding observation: ADD == ADC, SUB == SBB."""
        for microarch in (SUNNY_COVE, ZEN4):
            assert (
                microarch.lookup("adc64").latency
                == microarch.lookup("add64").latency
            )
            assert (
                microarch.lookup("sbb64").latency
                == microarch.lookup("sub64").latency
            )


class TestScheduler:
    def _trace(self, *ops):
        t = Tracer()
        for op in ops:
            t.emit(op)
        return t

    def test_port_pressure_balances(self):
        # Four adds over Intel's four scalar ALU ports: one each.
        result = schedule_trace(self._trace(*["add64"] * 4), SUNNY_COVE)
        assert result.port_bound == 1.0

    def test_single_port_instruction_serializes(self):
        # imul64 is p1-only: four of them stack on one port.
        result = schedule_trace(self._trace(*["imul64"] * 4), SUNNY_COVE)
        assert result.port_bound == 4.0

    def test_weight_models_occupancy(self):
        result = schedule_trace(self._trace("div64"), SUNNY_COVE)
        assert result.port_bound == 15.0  # divider occupancy

    def test_frontend_bound(self):
        result = schedule_trace(self._trace(*["add64"] * 50), SUNNY_COVE)
        assert result.frontend_bound == 50 / SUNNY_COVE.decode_width

    def test_critical_path_follows_dependencies(self):
        t = Tracer()
        t.entries.append(TraceEntry("mul64", dests=(1, 2), srcs=()))
        t.entries.append(TraceEntry("mul64", dests=(3, 4), srcs=(2,)))
        t.entries.append(TraceEntry("add64", dests=(5,), srcs=(4,)))
        result = schedule_trace(t, SUNNY_COVE)
        assert result.critical_path == 4 + 4 + 1

    def test_independent_chains_do_not_extend_path(self):
        t = Tracer()
        t.entries.append(TraceEntry("mul64", dests=(1,), srcs=()))
        t.entries.append(TraceEntry("mul64", dests=(2,), srcs=()))
        result = schedule_trace(t, SUNNY_COVE)
        assert result.critical_path == 4

    def test_throughput_cycles_overlap(self):
        t = Tracer()
        prev = 0
        for i in range(1, 11):  # a 10-deep add chain
            t.entries.append(TraceEntry("add64", dests=(i,), srcs=(prev,)))
            prev = i
        result = schedule_trace(t, SUNNY_COVE)
        serial = result.throughput_cycles(independent_blocks=1)
        parallel = result.throughput_cycles(independent_blocks=8)
        assert serial == 10.0  # latency-bound
        assert parallel < serial

    def test_invalid_overlap_rejected(self):
        result = schedule_trace(self._trace("add64"), SUNNY_COVE)
        with pytest.raises(MachineModelError):
            result.throughput_cycles(independent_blocks=0.5)

    def test_unknown_op_raises(self):
        with pytest.raises(UnknownInstructionError):
            schedule_trace(self._trace("hcf"), SUNNY_COVE)


class TestCacheModel:
    def test_level_selection_matches_capacities(self):
        cache = CacheModel(get_cpu("intel_xeon_8352y"))
        assert cache.level_name(16 * 1024) == "L1"
        assert cache.level_name(512 * 1024) == "L2"
        assert cache.level_name(2 * 1024 * 1024) == "L3"
        assert cache.level_name(1 << 30) == "DRAM"

    def test_paper_spill_boundary(self):
        """Section 5.4: 2^15 stage (~1.25 MB) fits Intel L2; 2^16 does not."""
        cache = CacheModel(get_cpu("intel_xeon_8352y"))
        ws_15 = 2 * (1 << 15) * 16 + (1 << 14) * 16
        ws_16 = 2 * (1 << 16) * 16 + (1 << 15) * 16
        assert cache.level_name(ws_15) == "L2"
        assert cache.level_name(ws_16) == "L3"

    def test_bandwidth_monotone_nonincreasing(self):
        cache = CacheModel(get_cpu("amd_epyc_9654"))
        sizes = [1 << 12, 1 << 19, 1 << 22, 1 << 30]
        bws = [cache.bandwidth_for(s) for s in sizes]
        assert bws == sorted(bws, reverse=True)

    def test_memory_cycles(self):
        cache = CacheModel(get_cpu("intel_xeon_8352y"))
        traffic = MemoryTraffic(load_bytes=512, store_bytes=128)
        assert traffic.total_bytes == 640
        cycles = cache.memory_cycles(traffic, 16 * 1024)
        assert cycles == 640 / 128.0  # L1 bandwidth

    def test_negative_working_set_rejected(self):
        cache = CacheModel(get_cpu("intel_xeon_8352y"))
        with pytest.raises(MachineModelError):
            cache.bandwidth_for(-1)


class TestMcaReport:
    def test_report_structure(self):
        t = Tracer()
        t.emit("vpaddq_zmm")
        t.emit("vpcmpuq_zmm")
        result = schedule_trace(t, SUNNY_COVE)
        report = resource_pressure_report(result, title="AVX-512")
        assert "AVX-512 - Resource pressure by instruction:" in report
        assert "vpaddq_zmm" in report
        assert "vpcmpuq_zmm" in report
        assert "port bound" in report

    def test_pressure_summary_drops_zeroes(self):
        t = Tracer()
        t.emit("vpaddq_zmm")
        result = schedule_trace(t, SUNNY_COVE)
        summary = pressure_summary(result)
        assert all(v > 0 for v in summary.values())
        assert summary  # at least one port used
