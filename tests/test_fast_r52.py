"""The r52 substrate: bit-exactness vs arith.dwmod, mode plumbing, carries.

The 52-bit redundant-limb substrate (:mod:`repro.fast.r52`) must agree
bit for bit with the branch-structured double-word reference
(:mod:`repro.arith.dwmod`) at *every* supported width — in particular at
the limb-count boundaries (50/51, 102/103) where the representation
switches between one, two and three planes, and at the top of the range
(124 bits) where the Barrett intermediates use all the headroom the
limb-count rule guarantees.
"""

import os
import random

import pytest

pytest.importorskip("numpy")
import numpy as np

from repro.arith.doubleword import dw_from_int, dw_value
from repro.arith.dwmod import addmod128, mulmod128, submod128
from repro.arith.primes import find_ntt_prime
from repro.errors import ArithmeticDomainError
from repro.fast.limbs import limbs_from_ints, limbs_to_ints, r52_join, r52_split
from repro.fast.modular import FastModulus
from repro.fast.ntt import FastNegacyclic, FastNtt
from repro.fast.r52 import (
    AUTO_MAX_BETA,
    FAST_MODE_ENV,
    MAX_DEFERRED_ADDS,
    STAGE_DEFERRED_ADDS,
    R52Modulus,
    R52Ntt,
    get_r52_modulus,
    limb_count,
    resolve_fast_mode,
)

#: Transform order every drawn prime supports (n <= 32 negacyclic).
ORDER = 64

#: The widths where the representation changes shape: the one/two-limb
#: boundary (50/51), the two/three-limb boundary (102/103/104/105) and
#: the top of the supported range.
BOUNDARY_WIDTHS = (51, 52, 53, 102, 103, 104, 105, 123, 124)


def _dwmod_reference(op, q, xs, ys):
    m = dw_from_int(q)
    return [dw_value(op(dw_from_int(x), dw_from_int(y), m)) for x, y in zip(xs, ys)]


def _boundary_operands(q, rng, count):
    """Reduced operands biased toward the carry-hazardous edges."""
    edges = sorted(
        {
            v % q
            for v in (
                0, 1, 2, q - 1, q - 2,
                (1 << 52) - 1, 1 << 52, (1 << 52) + 1,
                (1 << 104) - 1, 1 << 104,
                (1 << 64) - 1, 1 << 64,
            )
        }
    )
    out = list(edges[:count])
    while len(out) < count:
        out.append(rng.randrange(q))
    return out


class TestBitExactVersusDwmod:
    @pytest.mark.parametrize("bits", BOUNDARY_WIDTHS)
    def test_boundary_widths(self, bits):
        q = find_ntt_prime(bits, ORDER)
        rng = random.Random(bits)
        r = R52Modulus(q)
        xs = _boundary_operands(q, rng, 64)
        ys = list(reversed(_boundary_operands(q, rng, 64)))
        xa, ya = r.from_ints(xs), r.from_ints(ys)
        assert r.to_ints(r.mulmod(xa, ya)) == _dwmod_reference(mulmod128, q, xs, ys)
        assert r.to_ints(r.addmod(xa, ya)) == _dwmod_reference(addmod128, q, xs, ys)
        assert r.to_ints(r.submod(xa, ya)) == _dwmod_reference(submod128, q, xs, ys)

    @pytest.mark.parametrize("bits", BOUNDARY_WIDTHS)
    def test_limb_count_rule(self, bits):
        q = find_ntt_prime(bits, ORDER)
        r = R52Modulus(q)
        beta = q.bit_length()
        assert r.limbs == limb_count(beta)
        # The two spare bits: the lazy range and every Barrett
        # intermediate fit the radix.
        assert 4 * q < 1 << (52 * r.limbs)
        assert r.mu < 1 << (52 * r.limbs)

    def test_shoup_matches_plain(self):
        rng = random.Random(17)
        for bits in (51, 100, 104, 124):
            q = find_ntt_prime(bits, ORDER)
            r = R52Modulus(q)
            xs = _boundary_operands(q, rng, 32)
            xa = r.from_ints(xs)
            for w in (0, 1, q - 1, rng.randrange(q)):
                pair = r.shoup(w)
                assert r.to_ints(r.mulmod_shoup(xa, pair)) == [
                    w * x % q for x in xs
                ]

    def test_shoup_lazy_accepts_lazy_range_and_stays_below_2q(self):
        rng = random.Random(23)
        q = find_ntt_prime(100, ORDER)
        r = R52Modulus(q)
        lazy_vals = [rng.randrange(4 * q) for _ in range(64)] + [0, 4 * q - 1]
        planes = r.from_dw(limbs_from_ints(lazy_vals))
        w = rng.randrange(q)
        out = r.to_ints(r.mulmod_shoup_lazy(planes, r.shoup(w)))
        for val, got in zip(lazy_vals, out):
            assert got < 2 * q
            assert got % q == w * val % q

    def test_shoup_rejects_unreduced_multiplicand(self):
        q = find_ntt_prime(100, ORDER)
        r = R52Modulus(q)
        with pytest.raises(ArithmeticDomainError):
            r.shoup(q)


class TestSplitJoinRoundtrip:
    @pytest.mark.parametrize("limbs", (1, 2, 3))
    def test_roundtrip(self, limbs):
        rng = random.Random(limbs)
        # The dw side is 128-bit, so three limbs only ever see values
        # below 2^128 (plane 2 carries bits 104..128).
        top = min(1 << (52 * limbs), 1 << 128)
        values = [rng.randrange(top) for _ in range(37)] + [0, top - 1]
        arr = limbs_from_ints(values)
        planes = r52_split(arr, limbs)
        assert len(planes) == limbs
        for p in planes:
            assert p.dtype == np.uint64
            assert int(p.max(initial=0)) < 1 << 52
        assert limbs_to_ints(r52_join(planes)) == values


class TestNttModes:
    @pytest.mark.parametrize("bits", (60, 100, 104, 124))
    def test_r52_and_dw_transforms_agree(self, bits):
        n = 32
        q = find_ntt_prime(bits, 2 * n)
        rng = random.Random(bits)
        f = [rng.randrange(q) for _ in range(n)]
        g = [rng.randrange(q) for _ in range(n)]
        dw = FastNtt(n, q, mode="dw")
        r52 = FastNtt(n, q, mode="r52")
        assert r52.mode == "r52" and dw.mode == "dw"
        assert dw.forward(f) == r52.forward(f)
        assert r52.inverse(r52.forward(f)) == f
        assert dw.cyclic_multiply(f, g) == r52.cyclic_multiply(f, g)
        assert (
            FastNegacyclic(n, q, mode="dw").multiply(f, g)
            == FastNegacyclic(n, q, mode="r52").multiply(f, g)
        )

    def test_batched_rows(self):
        n, batch = 16, 5
        q = find_ntt_prime(100, 2 * n)
        rng = random.Random(5)
        rows = [[rng.randrange(q) for _ in range(n)] for _ in range(batch)]
        dw = FastNtt(n, q, mode="dw")
        r52 = FastNtt(n, q, mode="r52")
        assert dw.forward(rows) == r52.forward(rows)
        assert r52.inverse(r52.forward(rows)) == rows


class TestModeResolution:
    def test_auto_threshold(self):
        below = find_ntt_prime(AUTO_MAX_BETA, ORDER)
        above = find_ntt_prime(AUTO_MAX_BETA + 2, ORDER)
        assert resolve_fast_mode("auto", below) == "r52"
        assert resolve_fast_mode("auto", above) == "dw"
        assert resolve_fast_mode(None, None) == "auto"
        assert resolve_fast_mode("r52", above) == "r52"
        assert resolve_fast_mode("dw", below) == "dw"

    def test_invalid_mode_rejected(self):
        with pytest.raises(ArithmeticDomainError):
            resolve_fast_mode("montgomery", 97)
        with pytest.raises(ArithmeticDomainError):
            FastModulus(97, mode="ifma")

    def test_env_override(self):
        old = os.environ.get(FAST_MODE_ENV)
        try:
            os.environ[FAST_MODE_ENV] = "dw"
            assert resolve_fast_mode(None, find_ntt_prime(100, ORDER)) == "dw"
            os.environ[FAST_MODE_ENV] = "r52"
            assert resolve_fast_mode(None, find_ntt_prime(124, ORDER)) == "r52"
            # Explicit kwarg wins over the environment.
            assert resolve_fast_mode("dw", find_ntt_prime(100, ORDER)) == "dw"
        finally:
            if old is None:
                os.environ.pop(FAST_MODE_ENV, None)
            else:
                os.environ[FAST_MODE_ENV] = old

    def test_forced_r52_still_exact_above_auto_range(self):
        q = find_ntt_prime(120, ORDER)
        rng = random.Random(9)
        fm = FastModulus(q, mode="r52")
        xs = [rng.randrange(q) for _ in range(16)]
        ys = [rng.randrange(q) for _ in range(16)]
        assert fm.mulmod_ints(xs, ys) == [x * y % q for x, y in zip(xs, ys)]


class TestModulusMemoization:
    def test_same_instance_returned(self):
        FastModulus.clear_cache()
        q = find_ntt_prime(100, ORDER)
        a = FastModulus.get(q)
        b = FastModulus.get(q)
        assert a is b
        # A different mode is a different cache entry.
        c = FastModulus.get(q, "dw")
        assert c is not a
        assert FastModulus.cache_size() == 2

    def test_r52_modulus_memoized_too(self):
        q = find_ntt_prime(90, ORDER)
        assert get_r52_modulus(q) is get_r52_modulus(q)

    def test_plans_share_the_modulus(self):
        from repro.fast.blas import FastBlasPlan

        FastModulus.clear_cache()
        q = find_ntt_prime(100, 2 * ORDER)
        ntt = FastNtt(ORDER, q)
        blas = FastBlasPlan(q)
        assert ntt.mod is blas.mod


class TestDeferredCarryBudget:
    """The redundancy arithmetic behind the lazy NTT's carry schedule."""

    def test_budget_constants(self):
        # A uint64 lane can absorb exactly 2^(64-52) canonical limbs
        # before wrapping...
        assert ((1 << 52) - 1) * MAX_DEFERRED_ADDS < 1 << 64
        assert ((1 << 52) - 1) * (MAX_DEFERRED_ADDS + 1) >= 1 << 64
        # ...and the lazy butterfly stays far inside that budget.
        assert STAGE_DEFERRED_ADDS <= MAX_DEFERRED_ADDS
        assert R52Ntt.CARRY_SCHEDULE["butterfly_deferred_adds"] == (
            STAGE_DEFERRED_ADDS
        )

    def test_max_depth_accumulation_is_exact(self):
        """Summing the budget's worth of max limbs must not wrap."""
        limb = np.uint64((1 << 52) - 1)
        acc = np.zeros(4, dtype=np.uint64)
        with np.errstate(over="ignore"):
            for _ in range(STAGE_DEFERRED_ADDS):
                acc = acc + limb
        assert int(acc[0]) == STAGE_DEFERRED_ADDS * ((1 << 52) - 1)

    def test_normalize_flushes_deferred_adds(self):
        q = find_ntt_prime(100, ORDER)
        r = R52Modulus(q)
        rng = random.Random(31)
        vals = [rng.randrange(q) for _ in range(16)]
        planes = r.from_ints(vals)
        # Deferred limb-wise doubling: redundant planes, exact value.
        with np.errstate(over="ignore"):
            doubled = [p + p for p in planes]
        flushed = r.normalize(doubled)
        for p in flushed[:-1]:
            assert int(p.max()) < 1 << 52
        assert limbs_to_ints(r52_join(flushed)) == [2 * v for v in vals]


try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    @st.composite
    def r52_case(draw):
        bits = draw(
            st.one_of(
                st.sampled_from(BOUNDARY_WIDTHS),
                st.integers(min_value=51, max_value=124),
            )
        )
        q = find_ntt_prime(bits, ORDER)
        edges = sorted(
            {
                v % q
                for v in (
                    0, 1, q - 1, q - 2,
                    (1 << 52) - 1, 1 << 52,
                    (1 << 104) - 1, 1 << 104,
                )
            }
        )
        operand = st.one_of(
            st.sampled_from(edges), st.integers(min_value=0, max_value=q - 1)
        )
        return q, [draw(operand) for _ in range(8)]

    @settings(max_examples=50, deadline=None)
    @given(case=r52_case())
    def test_r52_matches_dwmod_under_hypothesis(case):
        q, operands = case
        r = R52Modulus(q)
        xs, ys = operands[:4], operands[4:]
        xa, ya = r.from_ints(xs), r.from_ints(ys)
        assert r.to_ints(r.mulmod(xa, ya)) == _dwmod_reference(
            mulmod128, q, xs, ys
        )
        assert r.to_ints(r.addmod(xa, ya)) == _dwmod_reference(
            addmod128, q, xs, ys
        )
        assert r.to_ints(r.submod(xa, ya)) == _dwmod_reference(
            submod128, q, xs, ys
        )

    @settings(max_examples=15, deadline=None)
    @given(case=r52_case())
    def test_fast_modulus_r52_path_matches_dw_path(case):
        q, operands = case
        xs, ys = operands[:4], operands[4:]
        dw = FastModulus(q, mode="dw")
        r52 = FastModulus(q, mode="r52")
        assert dw.mulmod_ints(xs, ys) == r52.mulmod_ints(xs, ys)

except ImportError:  # pragma: no cover - hypothesis is an extra
    pass
