"""Tests for scalar modular arithmetic (Equations 1-4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arith.barrett import BarrettParams
from repro.arith.modular import add_mod, inv_mod, mul_mod, pow_mod, sub_mod
from repro.errors import ArithmeticDomainError

from tests.conftest import MID_Q, SMALL_Q

residues = st.integers(min_value=0, max_value=MID_Q - 1)


class TestAddSub:
    @given(residues, residues)
    def test_add_matches_mod(self, a, b):
        assert add_mod(a, b, MID_Q) == (a + b) % MID_Q

    @given(residues, residues)
    def test_sub_matches_mod(self, a, b):
        assert sub_mod(a, b, MID_Q) == (a - b) % MID_Q

    def test_add_boundary_wraps(self):
        assert add_mod(MID_Q - 1, MID_Q - 1, MID_Q) == MID_Q - 2

    def test_sub_zero_minus_one_wraps(self):
        assert sub_mod(0, 1, MID_Q) == MID_Q - 1

    def test_rejects_unreduced_input(self):
        with pytest.raises(ArithmeticDomainError):
            add_mod(MID_Q, 0, MID_Q)
        with pytest.raises(ArithmeticDomainError):
            sub_mod(0, MID_Q, MID_Q)


class TestMul:
    @given(residues, residues)
    @settings(max_examples=200)
    def test_mul_matches_mod(self, a, b):
        assert mul_mod(a, b, MID_Q) == (a * b) % MID_Q

    def test_reuses_precomputed_params(self):
        params = BarrettParams(SMALL_Q)
        assert mul_mod(5, 7, SMALL_Q, params) == 35 % SMALL_Q

    def test_rejects_mismatched_params(self):
        with pytest.raises(ArithmeticDomainError):
            mul_mod(1, 1, MID_Q, BarrettParams(SMALL_Q))


class TestPowInv:
    @given(residues)
    def test_pow_matches_builtin(self, base):
        assert pow_mod(base, 65537, MID_Q) == pow(base, 65537, MID_Q)

    def test_pow_zero_exponent(self):
        assert pow_mod(5, 0, MID_Q) == 1

    def test_pow_rejects_negative_exponent(self):
        with pytest.raises(ArithmeticDomainError):
            pow_mod(2, -1, MID_Q)

    @given(st.integers(min_value=1, max_value=MID_Q - 1))
    def test_inverse_property(self, a):
        assert a * inv_mod(a, MID_Q) % MID_Q == 1

    def test_inv_of_zero_rejected(self):
        with pytest.raises(ArithmeticDomainError):
            inv_mod(0, MID_Q)

    def test_inv_of_noncoprime_rejected(self):
        with pytest.raises(ArithmeticDomainError):
            inv_mod(3, 9)

    def test_fermat_consistency(self):
        # For prime q, a^(q-2) is the inverse.
        a = 123456789 % SMALL_Q
        assert inv_mod(a, SMALL_Q) == pow(a, SMALL_Q - 2, SMALL_Q)
