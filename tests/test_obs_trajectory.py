"""Trajectory: unified history view and the noise-aware perfgate."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs.snapshot import META_KEY, SnapshotStore
from repro.obs.trajectory import (
    format_history,
    gate,
    gate_store,
    gateable_key,
    noise_limit,
    run_perfgate,
    unified_history,
)


def _store_with(tmp_path, series, name="BENCH_test.json", key="x.wall_s"):
    """A snapshot store whose history is ``series`` for one key."""
    store = SnapshotStore(tmp_path / name)
    for i, value in enumerate(series):
        store.record({key: value}, label=f"run-{i}")
    return store


class TestGateableKeys:
    def test_unit_suffixes_are_gateable(self):
        for key in ("a.wall_s", "b_ns", "c_us", "d.lat_ms", "e_cycles"):
            assert gateable_key(key)

    def test_speedup_ratios_are_not(self):
        # Higher-is-better keys recorded next to wall clocks must never
        # be gated under the lower-is-better convention.
        assert not gateable_key("par.ntt_batch.speedup")
        assert not gateable_key("fast.ntt.throughput")


class TestNoiseLimit:
    def test_quiet_history_keeps_relative_floor(self):
        med, mad, limit = noise_limit([1.0, 1.0, 1.0], rel_floor=0.10)
        assert med == 1.0 and mad == 0.0
        assert limit == pytest.approx(1.10)

    def test_noisy_history_widens_the_limit(self):
        values = [1.0, 1.3, 0.8, 1.2, 0.9]
        _, mad, limit = noise_limit(values, mad_k=4.0, rel_floor=0.10)
        assert mad > 0
        assert limit > 1.0 * 1.10  # wider than the quiet-floor limit


class TestGating:
    def test_noise_below_mad_threshold_passes(self, tmp_path):
        store = _store_with(tmp_path, [1.00, 1.04, 0.97, 1.02, 1.03])
        report = gate([store.path])
        assert report.ok
        assert len(report.regressions) == 0
        statuses = {v.status for v in report.verdicts}
        assert statuses <= {"ok", "improvement"}

    def test_step_regression_fails(self, tmp_path):
        store = _store_with(tmp_path, [1.00, 1.02, 0.99, 1.01, 2.0])
        report = gate([store.path])
        assert not report.ok
        (verdict,) = report.regressions
        assert verdict.key == "x.wall_s"
        assert verdict.value == pytest.approx(2.0)
        assert verdict.median == pytest.approx(1.005)

    def test_short_history_refuses_to_gate(self, tmp_path):
        # Two snapshots = one historical run < min_runs=2: reported, not
        # failed, even when the value doubled.
        store = _store_with(tmp_path, [1.0, 2.0])
        report = gate([store.path], min_runs=2)
        assert report.ok
        (verdict,) = report.ungated
        assert verdict.status == "short-history"
        assert verdict.runs == 1

    def test_single_snapshot_gates_nothing(self, tmp_path):
        store = _store_with(tmp_path, [1.0])
        assert gate_store(store.path) == []

    def test_improvement_reported_not_failed(self, tmp_path):
        store = _store_with(tmp_path, [1.0, 1.01, 0.99, 1.0, 0.5])
        report = gate([store.path])
        assert report.ok
        assert [v.key for v in report.improvements] == ["x.wall_s"]

    def test_non_suffix_keys_skipped_unless_all_keys(self, tmp_path):
        store = _store_with(tmp_path, [1.0, 1.0, 5.0], key="x.speedup")
        assert gate([store.path]).verdicts == []
        report = gate([store.path], all_keys=True)
        assert [v.key for v in report.verdicts] == ["x.speedup"]

    def test_window_bounds_the_baseline(self, tmp_path):
        # Old slow era outside the window must not mask a regression
        # against the recent fast era.
        series = [5.0] * 10 + [1.0, 1.0, 1.0, 1.0, 2.5]
        store = _store_with(tmp_path, series)
        report = gate([store.path], window=4)
        assert not report.ok

    def test_missing_files_skipped(self, tmp_path):
        report = gate([tmp_path / "absent.json"])
        assert report.ok and report.verdicts == []

    def test_mad_scaling_tolerates_its_own_noise(self, tmp_path):
        # A genuinely noisy history (MAD ~0.1) admits a 1.35 reading that
        # a naive 10%-of-last-run diff would have failed.
        store = _store_with(tmp_path, [1.0, 1.2, 0.9, 1.1, 0.95, 1.35])
        report = gate([store.path], mad_k=4.0)
        assert report.ok

    def test_invalid_parameters_rejected(self, tmp_path):
        store = _store_with(tmp_path, [1.0, 1.0])
        with pytest.raises(ObservabilityError):
            gate_store(store.path, window=0)
        with pytest.raises(ObservabilityError):
            gate_store(store.path, min_runs=0)


class TestHistoryView:
    def test_rows_carry_meta_and_sort_by_time(self, tmp_path):
        a = _store_with(tmp_path, [1.0, 1.1], name="BENCH_a.json")
        b = _store_with(tmp_path, [2.0], name="BENCH_b.json")
        rows = unified_history([a.path, b.path])
        assert len(rows) == 3
        assert [r.unix_time for r in rows] == sorted(
            r.unix_time for r in rows
        )
        for row in rows:
            assert row.git_sha != ""
            assert row.timestamp.endswith("Z")
            assert row.hostname != ""

    def test_format_history_renders_table(self, tmp_path):
        store = _store_with(tmp_path, [1.0], name="BENCH_a.json")
        text = format_history(unified_history([store.path]))
        assert "BENCH_a.json" in text
        assert "git" in text and "host" in text

    def test_empty_history_renders_placeholder(self):
        assert "(no snapshots found)" in format_history([])


class TestRunPerfgate:
    def test_exit_zero_on_clean_rerun(self, tmp_path, capsys):
        store = _store_with(tmp_path, [1.0, 1.01, 0.99, 1.0])
        code = run_perfgate([store.path], show_history=True)
        assert code == 0
        out = capsys.readouterr().out
        assert "benchmark trajectory" in out
        assert "0 regressions" in out

    def test_exit_nonzero_on_injected_regression(self, tmp_path, capsys):
        store = _store_with(tmp_path, [1.0, 1.0, 1.0])
        latest = dict(store.load()[-1]["values"])
        store.record({k: 2.0 * v for k, v in latest.items()}, label="x2")
        assert run_perfgate([store.path]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_json_report_written(self, tmp_path):
        store = _store_with(tmp_path, [1.0, 1.0, 1.0])
        out = tmp_path / "gate.json"
        run_perfgate([store.path], json_path=out)
        payload = json.loads(out.read_text())
        assert payload["format"] == "repro.obs.trajectory/v1"
        assert payload["ok"] is True
        assert payload["verdicts"][0]["key"] == "x.wall_s"


class TestSnapshotMetaIntegration:
    def test_meta_block_invisible_to_gate(self, tmp_path):
        store = _store_with(tmp_path, [1.0, 1.0, 1.0])
        for snapshot in store.load():
            assert META_KEY in snapshot
        report = gate([store.path])
        assert all(not v.key.startswith(META_KEY) for v in report.verdicts)
