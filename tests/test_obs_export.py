"""Exporter round-trips: JSON-lines and Chrome trace-event schema."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs import session as obs_session
from repro.obs.export import (
    format_span_table,
    from_jsonl,
    to_chrome_trace,
    to_jsonl,
    validate_chrome_trace,
)
from repro.obs.spans import span


@pytest.fixture(autouse=True)
def _clean_session():
    obs_session.disable()
    yield
    obs_session.disable()


def _sample_spans():
    with obs_session.observing() as session:
        with span("outer", kernel="ntt"):
            with span("inner"):
                pass
        with span("sibling"):
            pass
        return list(session.spans.records), session.metrics


class TestJsonl:
    def test_round_trip(self):
        spans, _ = _sample_spans()
        text = to_jsonl(spans)
        records = from_jsonl(text)
        assert [r["name"] for r in records] == ["outer", "inner", "sibling"]
        outer = records[0]
        assert outer["kind"] == "span"
        assert outer["attrs"] == {"kernel": "ntt"}
        assert outer["duration_s"] >= records[1]["duration_s"]

    def test_metrics_included(self):
        spans, metrics = _sample_spans()
        metrics.counter("isa.instructions").inc(7)
        text = to_jsonl(spans, metrics.snapshot())
        kinds = [r["kind"] for r in from_jsonl(text)]
        assert kinds.count("metric") == 1
        metric = [r for r in from_jsonl(text) if r["kind"] == "metric"][0]
        assert metric["name"] == "isa.instructions"
        assert metric["value"] == 7.0

    def test_every_line_is_valid_json(self):
        spans, _ = _sample_spans()
        for line in to_jsonl(spans).splitlines():
            json.loads(line)

    def test_empty_input(self):
        assert to_jsonl([]) == ""
        assert from_jsonl("") == []

    def test_corrupt_line_raises(self):
        with pytest.raises(ObservabilityError):
            from_jsonl('{"kind": "span"}\nnot json\n')


class TestChromeTrace:
    def test_structure_and_validation(self):
        spans, _ = _sample_spans()
        trace = to_chrome_trace(spans, process_name="unit-test")
        validate_chrome_trace(trace)  # must not raise
        events = trace["traceEvents"]
        meta, rest = events[0], events[1:]
        assert meta["ph"] == "M"
        assert meta["args"]["name"] == "unit-test"
        assert [e["name"] for e in rest] == ["outer", "inner", "sibling"]
        for event in rest:
            assert event["ph"] == "X"
            assert event["ts"] >= 0 and event["dur"] >= 0

    def test_microsecond_units(self):
        spans, _ = _sample_spans()
        trace = to_chrome_trace(spans)
        outer = trace["traceEvents"][1]
        assert outer["ts"] == pytest.approx(spans[0].start_s * 1e6)
        assert outer["dur"] == pytest.approx(spans[0].duration_s * 1e6)

    def test_nesting_preserved_by_timestamps(self):
        spans, _ = _sample_spans()
        trace = to_chrome_trace(spans)
        by_name = {e["name"]: e for e in trace["traceEvents"][1:]}
        outer, inner = by_name["outer"], by_name["inner"]
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-6

    def test_serializes_to_json(self):
        spans, _ = _sample_spans()
        text = json.dumps(to_chrome_trace(spans))
        validate_chrome_trace(json.loads(text))

    @pytest.mark.parametrize(
        "bad",
        [
            [],
            {"events": []},
            {"traceEvents": "nope"},
            {"traceEvents": [{"name": "x"}]},  # missing ph
            {"traceEvents": [{"ph": "X", "name": "x", "ts": -1, "pid": 1, "tid": 1, "dur": 0}]},
            {"traceEvents": [{"ph": "X", "name": "x", "ts": 0, "pid": 1, "tid": 1}]},  # no dur
        ],
    )
    def test_validator_rejects_malformed(self, bad):
        with pytest.raises(ObservabilityError):
            validate_chrome_trace(bad)


class TestSpanTable:
    def test_renders_sorted_by_total(self):
        with obs_session.observing() as session:
            for _ in range(2):
                with span("hot"):
                    for _ in range(10000):
                        pass
            with span("cold"):
                pass
        text = format_span_table(session.spans.aggregate())
        lines = text.splitlines()
        assert "phase" in lines[1]
        assert lines[3].strip().startswith("hot")
        assert "cold" in text
