"""Tests for the AVX-512 IFMA52 extension."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arith.primes import default_modulus, find_ntt_prime
from repro.errors import ArithmeticDomainError, BackendError, NttParameterError
from repro.ifma.kernel import MASK52, IfmaKernel
from repro.ifma.ntt import IfmaNtt
from repro.ifma.perf import estimate_ifma_ntt
from repro.isa import avx512 as v
from repro.isa.trace import tracing
from repro.isa.types import Vec
from repro.machine.cpu import get_cpu
from repro.ntt.reference import naive_ntt
from repro.perf.estimator import estimate_ntt

from tests.conftest import BIG_Q, random_residues

Q110 = find_ntt_prime(110, 1 << 10)


class TestIfmaIntrinsics:
    @given(
        st.lists(st.integers(min_value=0, max_value=(1 << 64) - 1),
                 min_size=8, max_size=8),
        st.lists(st.integers(min_value=0, max_value=(1 << 64) - 1),
                 min_size=8, max_size=8),
        st.lists(st.integers(min_value=0, max_value=(1 << 60)),
                 min_size=8, max_size=8),
    )
    def test_madd52_semantics(self, a, b, acc):
        va, vb, vacc = Vec(a), Vec(b), Vec(acc)
        lo = v.mm512_madd52lo_epu64(vacc, va, vb)
        hi = v.mm512_madd52hi_epu64(vacc, va, vb)
        for i in range(8):
            product = (a[i] & MASK52) * (b[i] & MASK52)
            assert lo.lane(i) == (acc[i] + (product & MASK52)) & ((1 << 64) - 1)
            assert hi.lane(i) == (acc[i] + (product >> 52)) & ((1 << 64) - 1)

    def test_emits_single_instruction(self):
        a = Vec([1] * 8)
        with tracing() as t:
            v.mm512_madd52lo_epu64(a, a, a)
        assert [e.op for e in t] == ["vpmadd52luq_zmm"]


@pytest.mark.parametrize("q", [BIG_Q, Q110], ids=["q124", "q110"])
class TestKernelArithmetic:
    def test_modular_ops(self, q, rng):
        kernel = IfmaKernel(q)
        for _ in range(15):
            a = random_residues(rng, q, 8)
            b = random_residues(rng, q, 8)
            blk_a, blk_b = kernel.load_block(a), kernel.load_block(b)
            assert kernel.block_values(kernel.addmod(blk_a, blk_b)) == [
                (x + y) % q for x, y in zip(a, b)
            ]
            assert kernel.block_values(kernel.submod(blk_a, blk_b)) == [
                (x - y) % q for x, y in zip(a, b)
            ]
            assert kernel.block_values(kernel.mulmod(blk_a, blk_b)) == [
                (x * y) % q for x, y in zip(a, b)
            ]

    def test_extreme_residues(self, q, rng):
        kernel = IfmaKernel(q)
        for x in (0, 1, q - 1, q // 2):
            for y in (0, 1, q - 1):
                blk_a = kernel.load_block([x] * 8)
                blk_b = kernel.load_block([y] * 8)
                assert kernel.block_values(kernel.mulmod(blk_a, blk_b)) == [
                    x * y % q
                ] * 8
                assert kernel.block_values(kernel.submod(blk_a, blk_b)) == [
                    (x - y) % q
                ] * 8

    def test_shoup_mulmod(self, q, rng):
        kernel = IfmaKernel(q)
        for _ in range(15):
            w = rng.randrange(q)
            w_regs = kernel.broadcast_residue(w)
            ws = kernel._load([kernel.shoup_constant(w)] * 8, bound=1 << 156)
            y = random_residues(rng, q, 8)
            out = kernel.block_values(
                kernel.mulmod_shoup(kernel.load_block(y), w_regs, ws)
            )
            assert out == [w * value % q for value in y]

    def test_lazy_shoup_stays_below_2q(self, q, rng):
        kernel = IfmaKernel(q)
        for _ in range(15):
            w = rng.randrange(q)
            ws = kernel._load([kernel.shoup_constant(w)] * 8, bound=1 << 156)
            y = [rng.randrange(4 * q) for _ in range(8)]
            out = kernel.lazy_values(
                kernel.mulmod_shoup_lazy(
                    kernel.load_block_lazy(y), kernel.broadcast_residue(w), ws
                )
            )
            for o, yv in zip(out, y):
                assert o % q == w * yv % q
                assert o < 2 * q

    def test_lazy_butterfly_range_and_value(self, q, rng):
        kernel = IfmaKernel(q)
        for _ in range(10):
            x = [rng.randrange(4 * q) for _ in range(8)]
            y = [rng.randrange(4 * q) for _ in range(8)]
            w = rng.randrange(q)
            ws = kernel._load([kernel.shoup_constant(w)] * 8, bound=1 << 156)
            plus, minus = kernel.butterfly_lazy(
                kernel.load_block_lazy(x),
                kernel.load_block_lazy(y),
                kernel.broadcast_residue(w),
                ws,
            )
            for i in range(8):
                p = kernel.lazy_values(plus)[i]
                m = kernel.lazy_values(minus)[i]
                assert p < 4 * q and m < 4 * q
                assert p % q == (x[i] + w * y[i]) % q
                assert m % q == (x[i] - w * y[i]) % q

    def test_reduce_from_lazy(self, q, rng):
        kernel = IfmaKernel(q)
        values = [rng.randrange(4 * q) for _ in range(8)]
        out = kernel.block_values(
            kernel.reduce_from_lazy(kernel.load_block_lazy(values))
        )
        assert out == [value % q for value in values]


class TestValidation:
    def test_beta_range(self):
        with pytest.raises(ArithmeticDomainError):
            IfmaKernel(find_ntt_prime(60, 1 << 10))
        with pytest.raises(ArithmeticDomainError):
            IfmaKernel(1 << 125)

    def test_load_checks(self):
        kernel = IfmaKernel(BIG_Q)
        with pytest.raises(BackendError):
            kernel.load_block([0] * 4)
        with pytest.raises(ArithmeticDomainError):
            kernel.load_block([BIG_Q] * 8)
        kernel.load_block_lazy([2 * BIG_Q] * 8)  # lazy range OK
        with pytest.raises(ArithmeticDomainError):
            kernel.load_block_lazy([4 * BIG_Q] * 8)

    def test_shoup_constant_checks(self):
        kernel = IfmaKernel(BIG_Q)
        with pytest.raises(ArithmeticDomainError):
            kernel.shoup_constant(BIG_Q)


class TestIfmaNtt:
    @pytest.mark.parametrize("mode", ["barrett", "shoup", "lazy"])
    def test_matches_naive(self, mode, rng):
        q = BIG_Q
        plan = IfmaNtt(32, q, mode=mode)
        x = random_residues(rng, q, 32)
        assert plan.forward(x) == naive_ntt(x, q, root=plan.table.root)

    @pytest.mark.parametrize("mode", ["barrett", "shoup", "lazy"])
    def test_roundtrip(self, mode, rng):
        q = BIG_Q
        plan = IfmaNtt(32, q, mode=mode)
        x = random_residues(rng, q, 32)
        assert plan.inverse(plan.forward(x)) == x

    def test_modes_agree(self, rng):
        q = BIG_Q
        x = random_residues(rng, q, 32)
        outs = []
        root = None
        for mode in ("barrett", "shoup", "lazy"):
            plan = IfmaNtt(32, q, root=root, mode=mode)
            root = plan.table.root
            outs.append(plan.forward(x))
        assert outs[0] == outs[1] == outs[2]

    def test_unknown_mode_rejected(self):
        with pytest.raises(NttParameterError):
            IfmaNtt(32, BIG_Q, mode="montgomery")

    def test_undersized_rejected(self):
        with pytest.raises(NttParameterError):
            IfmaNtt(8, BIG_Q)


class TestPerf:
    def test_tuning_ladder_monotone_on_intel(self):
        q = BIG_Q
        cpu = get_cpu("intel_xeon_8352y")
        from repro.kernels import get_backend

        portable = estimate_ntt(1 << 14, q, get_backend("avx512"), cpu).ns
        shoup = estimate_ntt(
            1 << 14, q, get_backend("avx512"), cpu, twiddle_mode="shoup"
        ).ns
        ifma_lazy = estimate_ifma_ntt(1 << 14, q, cpu, "lazy").ns
        assert ifma_lazy < shoup < portable

    def test_tuned_gap_reaches_paper_regime(self):
        """The fully tuned rung must approach the paper's measured 2.4x."""
        q = BIG_Q
        cpu = get_cpu("intel_xeon_8352y")
        from repro.kernels import get_backend

        scalar = estimate_ntt(1 << 14, q, get_backend("scalar"), cpu).ns
        tuned = estimate_ifma_ntt(1 << 14, q, cpu, "lazy").ns
        assert 1.5 < scalar / tuned < 3.0

    def test_unknown_mode_rejected(self):
        with pytest.raises(Exception):
            estimate_ifma_ntt(1 << 12, BIG_Q, get_cpu("amd_epyc_9654"), "fast")

    def test_experiment_table(self):
        from repro.experiments.extension_ifma import run

        result = run()
        assert len(result.rows) == 10  # 2 CPUs x 5 rungs
        intel_rows = [r for r in result.rows if r[0] == "intel_xeon_8352y"]
        speedups = [float(r[3]) for r in intel_rows]
        assert speedups == sorted(speedups)  # monotone ladder on Intel
        assert speedups[-1] > 1.5

    def test_avx512_lazy_mode_on_simd_ntt(self):
        """The 64-bit lazy rung exists on the portable backends too."""
        import random

        from repro.kernels import get_backend
        from repro.ntt.reference import naive_ntt
        from repro.ntt.simd import SimdNtt

        rng = random.Random(4)
        q = BIG_Q
        x = [rng.randrange(q) for _ in range(32)]
        for name in ("scalar", "avx2", "avx512", "mqx"):
            plan = SimdNtt(32, q, get_backend(name), twiddle_mode="lazy")
            assert plan.forward(x) == naive_ntt(x, q, root=plan.table.root)
            assert plan.inverse(plan.forward(x)) == x

    def test_lazy_beats_shoup_beats_barrett(self):
        q = BIG_Q
        from repro.kernels import get_backend

        for cpu_key in ("intel_xeon_8352y", "amd_epyc_9654"):
            cpu = get_cpu(cpu_key)
            be = get_backend("avx512")
            barrett = estimate_ntt(1 << 14, q, be, cpu).ns
            shoup = estimate_ntt(1 << 14, q, be, cpu, twiddle_mode="shoup").ns
            lazy = estimate_ntt(1 << 14, q, be, cpu, twiddle_mode="lazy").ns
            assert lazy < shoup < barrett


class TestCarryScheduleConsistency:
    """The perf model's lazy cadence must match the executable r52 engine.

    ``estimate_ifma_ntt`` charges the lazy mode one whole-transform
    normalization sweep on top of the per-stage butterflies; the fast
    engine's r52 substrate *executes* that exact schedule. Pinning the
    two to the same constants means a change to either side (an extra
    reduce pass, a different lazy bound) fails here instead of silently
    de-correlating the model from the measured engine.
    """

    def test_final_reduce_cadence_matches_r52(self):
        from repro.fast.r52 import R52Ntt
        from repro.ifma.perf import LAZY_FINAL_REDUCE_PASSES

        schedule = R52Ntt.CARRY_SCHEDULE
        assert schedule["final_reduce_passes"] == LAZY_FINAL_REDUCE_PASSES

    def test_lazy_bound_matches_r52_and_kernel(self):
        from repro.fast.r52 import R52Ntt
        from repro.ifma.perf import LAZY_BOUND_MULTIPLE

        assert R52Ntt.CARRY_SCHEDULE["lazy_bound_multiple"] == LAZY_BOUND_MULTIPLE
        # The kernel's lazy loader accepts exactly [0, 4q).
        kernel = IfmaKernel(BIG_Q)
        kernel.load_block_lazy([LAZY_BOUND_MULTIPLE * BIG_Q - 1] * 8)
        with pytest.raises(ArithmeticDomainError):
            kernel.load_block_lazy([LAZY_BOUND_MULTIPLE * BIG_Q] * 8)

    def test_deferred_budget_is_honored(self):
        from repro.fast.r52 import MAX_DEFERRED_ADDS, R52Ntt, STAGE_DEFERRED_ADDS

        schedule = R52Ntt.CARRY_SCHEDULE
        assert schedule["butterfly_deferred_adds"] == STAGE_DEFERRED_ADDS
        assert schedule["max_deferred_adds"] == MAX_DEFERRED_ADDS
        assert STAGE_DEFERRED_ADDS <= MAX_DEFERRED_ADDS
