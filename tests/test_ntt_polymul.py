"""Polynomial multiplication via NTT must equal schoolbook (Equation 10)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NttParameterError
from repro.kernels import get_backend
from repro.ntt.polymul import ntt_polymul, simd_ntt_polymul
from repro.ntt.reference import schoolbook_polymul
from repro.ntt.simd import SimdNtt

from tests.conftest import ALL_BACKEND_NAMES, BIG_Q, MID_Q, random_residues


class TestPlainPolymul:
    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_matches_schoolbook(self, data):
        q = MID_Q
        len_f = data.draw(st.integers(min_value=1, max_value=12))
        len_g = data.draw(st.integers(min_value=1, max_value=12))
        f = [data.draw(st.integers(min_value=0, max_value=q - 1)) for _ in range(len_f)]
        g = [data.draw(st.integers(min_value=0, max_value=q - 1)) for _ in range(len_g)]
        assert ntt_polymul(f, g, q) == schoolbook_polymul(f, g, q)

    def test_degree_zero(self):
        assert ntt_polymul([3], [4], MID_Q) == [12 % MID_Q]

    def test_rejects_empty(self):
        with pytest.raises(NttParameterError):
            ntt_polymul([], [1], MID_Q)


class TestSimdPolymul:
    @pytest.mark.parametrize("name", ALL_BACKEND_NAMES)
    def test_matches_schoolbook(self, name, rng):
        q = BIG_Q
        backend = get_backend(name)
        f = random_residues(rng, q, 16)
        g = random_residues(rng, q, 16)
        assert simd_ntt_polymul(f, g, q, backend) == schoolbook_polymul(f, g, q)

    def test_reusable_plan(self, rng):
        q = BIG_Q
        backend = get_backend("mqx")
        plan = SimdNtt(32, q, backend)
        f = random_residues(rng, q, 16)
        g = random_residues(rng, q, 16)
        out = simd_ntt_polymul(f, g, q, backend, plan=plan)
        assert out == schoolbook_polymul(f, g, q)

    def test_rejects_mismatched_plan(self, rng):
        q = BIG_Q
        backend = get_backend("mqx")
        plan = SimdNtt(64, q, backend)
        with pytest.raises(NttParameterError):
            simd_ntt_polymul([1] * 16, [1] * 16, q, backend, plan=plan)

    def test_karatsuba_backend_agrees(self, rng):
        q = BIG_Q
        backend = get_backend("avx512")
        f = random_residues(rng, q, 16)
        g = random_residues(rng, q, 16)
        assert simd_ntt_polymul(f, g, q, backend, algorithm="karatsuba") == (
            schoolbook_polymul(f, g, q)
        )
