"""Tests for the BLAS layer (Section 2.3's four operations)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blas.ops import (
    BLAS_OPERATIONS,
    BlasPlan,
    axpy,
    vector_add,
    vector_pointwise_mul,
    vector_sub,
)
from repro.errors import ArithmeticDomainError
from repro.kernels import get_backend

from tests.conftest import ALL_BACKEND_NAMES, BIG_Q, MID_Q, random_residues


class TestOperations:
    def test_paper_lists_four_operations(self):
        assert BLAS_OPERATIONS == ("vector_add", "vector_sub", "vector_mul", "axpy")

    def test_vector_add(self, backend, rng):
        q = BIG_Q
        x = random_residues(rng, q, 32)
        y = random_residues(rng, q, 32)
        assert vector_add(x, y, q, backend) == [(a + b) % q for a, b in zip(x, y)]

    def test_vector_sub(self, backend, rng):
        q = BIG_Q
        x = random_residues(rng, q, 32)
        y = random_residues(rng, q, 32)
        assert vector_sub(x, y, q, backend) == [(a - b) % q for a, b in zip(x, y)]

    def test_vector_mul(self, backend, rng):
        q = BIG_Q
        x = random_residues(rng, q, 32)
        y = random_residues(rng, q, 32)
        assert vector_pointwise_mul(x, y, q, backend) == [
            (a * b) % q for a, b in zip(x, y)
        ]

    def test_axpy(self, backend, rng):
        q = BIG_Q
        a = rng.randrange(q)
        x = random_residues(rng, q, 32)
        y = random_residues(rng, q, 32)
        assert axpy(a, x, y, q, backend) == [
            (a * xi + yi) % q for xi, yi in zip(x, y)
        ]

    def test_backends_agree(self, rng):
        q = MID_Q
        x = random_residues(rng, q, 64)
        y = random_residues(rng, q, 64)
        results = [
            vector_pointwise_mul(x, y, q, get_backend(name))
            for name in ALL_BACKEND_NAMES
        ]
        assert all(r == results[0] for r in results)


class TestPlan:
    def test_plan_reuse_across_calls(self, rng):
        q = BIG_Q
        plan = BlasPlan(q, get_backend("mqx"))
        x = random_residues(rng, q, 16)
        y = random_residues(rng, q, 16)
        assert plan.vector_add(x, y) == [(a + b) % q for a, b in zip(x, y)]
        assert plan.vector_mul(x, y) == [(a * b) % q for a, b in zip(x, y)]

    def test_karatsuba_plan(self, rng):
        q = BIG_Q
        plan = BlasPlan(q, get_backend("avx512"), algorithm="karatsuba")
        x = random_residues(rng, q, 16)
        y = random_residues(rng, q, 16)
        assert plan.vector_mul(x, y) == [(a * b) % q for a, b in zip(x, y)]

    def test_length_mismatch_rejected(self):
        plan = BlasPlan(MID_Q, get_backend("scalar"))
        with pytest.raises(ArithmeticDomainError):
            plan.vector_add([1, 2], [1])

    def test_non_multiple_of_lanes_rejected(self):
        plan = BlasPlan(MID_Q, get_backend("avx512"))
        with pytest.raises(ArithmeticDomainError):
            plan.vector_add([0] * 12, [0] * 12)

    def test_unreduced_elements_rejected(self):
        plan = BlasPlan(MID_Q, get_backend("scalar"))
        with pytest.raises(ArithmeticDomainError):
            plan.vector_add([MID_Q], [0])
        with pytest.raises(ArithmeticDomainError):
            plan.axpy(MID_Q, [0], [0])


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_blas_algebraic_identities(data):
    """axpy(1, x, 0) == x; add/sub inverse; mul distributes over add."""
    q = MID_Q
    backend = get_backend(data.draw(st.sampled_from(["scalar", "mqx"])))
    n = 2 * backend.lanes
    x = [data.draw(st.integers(min_value=0, max_value=q - 1)) for _ in range(n)]
    y = [data.draw(st.integers(min_value=0, max_value=q - 1)) for _ in range(n)]
    plan = BlasPlan(q, backend)
    zeros = [0] * n

    assert plan.axpy(1, x, zeros) == x
    assert plan.vector_sub(plan.vector_add(x, y), y) == x
    left = plan.vector_mul(x, plan.vector_add(y, y))
    right = plan.vector_add(plan.vector_mul(x, y), plan.vector_mul(x, y))
    assert left == right
