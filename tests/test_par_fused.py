"""Tests for fused multi-op shards: repro.fast.chain + ParChain.

Fused chains collapse NTT→pointwise→INTT-shaped pipelines into one pool
dispatch, with intermediates resident on the worker's active arithmetic
substrate (52-bit limb planes under r52 moduli). These tests pin the
bit-exactness contract on both substrates, against an independent
step-by-step reference, under fault injection, and under the faithful
cross-engine audit.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arith.modular import inv_mod
from repro.arith.primes import find_ntt_prime
from repro.errors import NttParameterError
from repro.fast import chain as fast_chain
from repro.fast.blas import FastBlasPlan
from repro.fast.ntt import FastNegacyclic, FastNtt
from repro.par import ParallelExecutor, ParChain, ParNegacyclic

N = 16
#: r52 substrate (q well under 102 bits) and dw substrate (q above it).
Q_R52 = find_ntt_prime(60, 2 * N)
Q_DW = find_ntt_prime(118, 2 * N)


def _vectors(seed, count=4, n=N, q=Q_R52):
    rng = random.Random(seed)
    return [[rng.randrange(q) for _ in range(n)] for _ in range(count)]


@pytest.fixture(scope="module")
def pool():
    executor = ParallelExecutor(workers=2, task_timeout=30.0)
    executor.start()
    yield executor
    executor.close()


# ---------------------------------------------------------------------------
# An independent step-by-step reference (public fast-engine API, per step)
# ---------------------------------------------------------------------------


def _reference_chain(steps, inputs, n, q, psi=None):
    """Evaluate a chain one public-API call at a time (no fusion)."""
    ntt = FastNtt(n, q)
    blas = FastBlasPlan(q)
    twist = untwist = None
    if psi is not None:
        twist = [pow(psi, i, q) for i in range(n)]
        untwist = [pow(inv_mod(psi, q), i, q) for i in range(n)]
    rows = len(next(iter(inputs.values())))
    out = []
    for row in range(rows):
        regs = {name: list(vals[row]) for name, vals in inputs.items()}
        for step in steps:
            kind = step["kind"]
            if kind == "ntt":
                method = (
                    ntt.inverse
                    if step["direction"] == "inverse"
                    else ntt.forward
                )
                regs[step["dst"]] = method(
                    regs[step["src"]],
                    natural_order=bool(step.get("natural", False)),
                )
            elif kind == "twist":
                tw = untwist if step["which"] == "untwist" else twist
                regs[step["dst"]] = [
                    v * t % q for v, t in zip(regs[step["src"]], tw)
                ]
            elif kind == "pointwise":
                regs[step["dst"]] = [
                    a * b % q
                    for a, b in zip(regs[step["a"]], regs[step["b"]])
                ]
            else:
                if step["blas_op"] == "axpy":
                    regs[step["dst"]] = blas.axpy(
                        int(step["a"]), regs[step["x"]], regs[step["y"]]
                    )
                else:
                    regs[step["dst"]] = getattr(blas, step["blas_op"])(
                        regs[step["x"]], regs[step["y"]]
                    )
        out.append(regs["out"])
    return out


def _random_chain(rng, q):
    """A random valid chain over input registers x and y."""
    defined = ["x", "y"]
    steps = []
    count = rng.randrange(1, 6)
    for index in range(count):
        dst = "out" if index == count - 1 else f"r{index}"
        kind = rng.choice(("ntt", "pointwise", "blas"))
        if kind == "ntt":
            steps.append({
                "kind": "ntt",
                "direction": rng.choice(("forward", "inverse")),
                "natural": rng.random() < 0.5,
                "src": rng.choice(defined),
                "dst": dst,
            })
        elif kind == "pointwise":
            steps.append({
                "kind": "pointwise",
                "a": rng.choice(defined),
                "b": rng.choice(defined),
                "dst": dst,
            })
        else:
            blas_op = rng.choice(fast_chain.BLAS_OPS)
            step = {
                "kind": "blas",
                "blas_op": blas_op,
                "x": rng.choice(defined),
                "y": rng.choice(defined),
                "dst": dst,
            }
            if blas_op == "axpy":
                step["a"] = rng.randrange(q)
            steps.append(step)
        defined.append(dst)
    return steps


# ---------------------------------------------------------------------------
# Bit-exactness
# ---------------------------------------------------------------------------


class TestFusedBitExactness:
    @pytest.mark.parametrize("q", [Q_R52, Q_DW], ids=["r52", "dw"])
    def test_multiply_add_matches_compose(self, pool, q):
        f, g, acc = (
            _vectors(s, q=q) for s in (1, 2, 3)
        )
        par = ParNegacyclic(N, q, executor=pool)
        fast = FastNegacyclic(N, q, psi=par.psi)
        blas = FastBlasPlan(q)
        want = blas.vector_add(fast.multiply(f, g), acc)
        assert par.multiply_add(f, g, acc) == want

    @pytest.mark.parametrize("q", [Q_R52, Q_DW], ids=["r52", "dw"])
    def test_canonical_chains_match_fast(self, pool, q):
        f, g = _vectors(4, q=q), _vectors(5, q=q)
        neg = FastNegacyclic(N, q)
        chain = ParChain(N, q, psi=neg.psi, executor=pool)
        got = chain.run(list(fast_chain.NEGACYCLIC_MUL_STEPS), x=f, y=g)
        assert got == neg.multiply(f, g)
        cyc = ParChain(N, q, executor=pool)
        got = cyc.run(list(fast_chain.CYCLIC_MUL_STEPS), x=f, y=g)
        assert got == FastNtt(N, q).cyclic_multiply(f, g)

    def test_flat_input_roundtrips(self, pool):
        vec = _vectors(6, count=1)[0]
        chain = ParChain(N, Q_R52, executor=pool)
        steps = [
            {"kind": "ntt", "direction": "forward", "natural": True,
             "src": "x", "dst": "fa"},
            {"kind": "ntt", "direction": "inverse", "natural": True,
             "src": "fa", "dst": "out"},
        ]
        assert chain.run(steps, x=vec) == vec

    @settings(deadline=None, max_examples=12)
    @given(
        bits=st.sampled_from([60, 118]),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_random_chains_match_unfused_reference(self, pool, bits, seed):
        n = 8
        q = find_ntt_prime(bits, 2 * n)
        rng = random.Random(seed)
        steps = _random_chain(rng, q)
        x = [[rng.randrange(q) for _ in range(n)] for _ in range(3)]
        y = [[rng.randrange(q) for _ in range(n)] for _ in range(3)]
        chain = ParChain(n, q, executor=pool)
        got = chain.run(steps, x=x, y=y)
        want = _reference_chain(steps, {"x": x, "y": y}, n, q)
        assert got == want


class TestFusedResilience:
    def test_exact_under_fault_injection(self):
        from repro.resil.inject import Fault, FaultPlan

        f, g, acc = (_vectors(s) for s in (7, 8, 9))
        fast = FastNegacyclic(N, Q_R52)
        blas = FastBlasPlan(Q_R52)
        want = blas.vector_add(fast.multiply(f, g), acc)
        with ParallelExecutor(workers=2, task_timeout=10.0) as executor:
            par = ParNegacyclic(N, Q_R52, executor=executor)
            executor.inject(FaultPlan({
                0: Fault("crash"), 1: Fault("corrupt"),
            }))
            assert par.multiply_add(f, g, acc) == want
            executor.inject(None)
            assert executor.stats["retries"] >= 1

    def test_faithful_audit_covers_chains(self):
        f, g, acc = (_vectors(s, count=2) for s in (10, 11, 12))
        fast = FastNegacyclic(N, Q_R52)
        blas = FastBlasPlan(Q_R52)
        want = blas.vector_add(fast.multiply(f, g), acc)
        with ParallelExecutor(
            workers=2, task_timeout=10.0, audit_fraction=1.0
        ) as executor:
            par = ParNegacyclic(N, Q_R52, executor=executor)
            assert par.multiply_add(f, g, acc) == want
            assert executor.stats["audited"] >= 1


class TestChainValidation:
    def test_twist_without_psi_rejected(self, pool):
        chain = ParChain(N, Q_R52, executor=pool)
        with pytest.raises(NttParameterError):
            chain.run(
                list(fast_chain.NEGACYCLIC_MUL_STEPS),
                x=_vectors(13), y=_vectors(14),
            )

    def test_missing_input_rejected(self, pool):
        chain = ParChain(N, Q_R52, executor=pool)
        with pytest.raises(NttParameterError):
            chain.run(list(fast_chain.CYCLIC_MUL_STEPS), x=_vectors(15))

    def test_mismatched_shapes_rejected(self, pool):
        chain = ParChain(N, Q_R52, executor=pool)
        with pytest.raises(NttParameterError):
            chain.run(
                list(fast_chain.CYCLIC_MUL_STEPS),
                x=_vectors(16, count=4), y=_vectors(17, count=2),
            )

    def test_unwritten_out_rejected(self, pool):
        chain = ParChain(N, Q_R52, executor=pool)
        steps = [{"kind": "pointwise", "a": "x", "b": "x", "dst": "tmp"}]
        with pytest.raises(NttParameterError):
            chain.run(steps, x=_vectors(18))

    def test_read_before_write_rejected(self):
        steps = [{"kind": "pointwise", "a": "x", "b": "ghost", "dst": "out"}]
        with pytest.raises(NttParameterError):
            fast_chain.validate_steps(steps, ["x"])

    def test_unknown_kind_rejected(self):
        with pytest.raises(NttParameterError):
            fast_chain.validate_steps(
                [{"kind": "warp", "src": "x", "dst": "out"}], ["x"]
            )
