"""Tests for the OpenFHE-style 32-bit-limb backend substitute."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.openfhe import (
    OpenFheContext,
    divrem_limbs32,
    int_from_limbs32,
    limbs32_from_int,
)
from repro.errors import ArithmeticDomainError
from repro.isa.trace import tracing

from tests.conftest import BIG_Q, MID_Q, SMALL_Q

U128 = st.integers(min_value=0, max_value=(1 << 128) - 1)
U256 = st.integers(min_value=0, max_value=(1 << 256) - 1)


class TestLimbConversion:
    @given(U128)
    def test_roundtrip(self, x):
        assert int_from_limbs32(limbs32_from_int(x, 4)) == x

    def test_rejects_overflow(self):
        with pytest.raises(ArithmeticDomainError):
            limbs32_from_int(1 << 128, 4)

    def test_rejects_negative(self):
        with pytest.raises(ArithmeticDomainError):
            limbs32_from_int(-1, 4)


class TestDivision32:
    @given(U256, st.integers(min_value=1, max_value=(1 << 124) - 1))
    @settings(max_examples=150, deadline=None)
    def test_divrem_exact(self, num, den):
        den_limbs = limbs32_from_int(den, 4)
        q, r = divrem_limbs32(limbs32_from_int(num, 8), den_limbs)
        assert int_from_limbs32(q) == num // den
        assert int_from_limbs32(r) == num % den

    def test_single_limb_divisor(self):
        q, r = divrem_limbs32(limbs32_from_int(10**20, 8), [97])
        assert int_from_limbs32(q) == 10**20 // 97
        assert int_from_limbs32(r) == 10**20 % 97

    def test_divide_by_zero_rejected(self):
        with pytest.raises(ArithmeticDomainError):
            divrem_limbs32([1, 2], [0])

    def test_small_numerator(self):
        q, r = divrem_limbs32([7, 0, 0, 0], [0, 0, 1, 0])
        assert int_from_limbs32(q) == 0
        assert int_from_limbs32(r) == 7


class TestContext:
    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_modular_ops(self, data):
        q = data.draw(st.sampled_from([SMALL_Q, MID_Q, BIG_Q]))
        ctx = OpenFheContext(q)
        a = data.draw(st.integers(min_value=0, max_value=q - 1))
        b = data.draw(st.integers(min_value=0, max_value=q - 1))
        assert ctx.addmod(a, b) == (a + b) % q
        assert ctx.submod(a, b) == (a - b) % q
        assert ctx.mulmod(a, b) == (a * b) % q

    def test_butterfly(self):
        q = MID_Q
        ctx = OpenFheContext(q)
        hi, lo = ctx.butterfly(3, 4, 5)
        assert hi == (3 + 20) % q
        assert lo == (3 - 20) % q

    def test_division_based_cost_structure(self):
        ctx = OpenFheContext(BIG_Q)
        with tracing() as t:
            ctx.mulmod(BIG_Q - 1, BIG_Q - 2)
        counts = t.op_counts()
        assert counts["call"] == 1
        # Knuth loop over 5 quotient limbs (some may take the q_hat
        # saturation branch, which skips the hardware divide).
        assert counts["div64"] >= 3
        assert counts["imul64"] >= 16    # 4x4 limb schoolbook product
        # No Barrett here: the generic path divides.
        assert counts.get("alloc", 0) == 0  # fixed-size objects, no heap

    def test_modulus_width_checked(self):
        with pytest.raises(ArithmeticDomainError):
            OpenFheContext(1 << 125)
        with pytest.raises(ArithmeticDomainError):
            OpenFheContext(2)

    def test_heavier_than_gmp_per_instruction_count(self):
        """Trace sanity: the 32-bit-limb path runs ~4x more instructions."""
        from repro.baselines.bignum import GmpContext

        gmp, ofhe = GmpContext(BIG_Q), OpenFheContext(BIG_Q)
        with tracing() as t_gmp:
            gmp.mulmod(BIG_Q - 1, BIG_Q - 2)
        with tracing() as t_ofhe:
            ofhe.mulmod(BIG_Q - 1, BIG_Q - 2)
        assert len(t_ofhe) > 2 * len(t_gmp)
