"""Tests for the Shoup/Harvey precomputed-twiddle butterfly."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExperimentError, NttParameterError
from repro.isa.trace import tracing
from repro.kernels import get_backend
from repro.machine.cpu import get_cpu
from repro.ntt.reference import naive_ntt
from repro.ntt.simd import SimdNtt
from repro.perf.estimator import estimate_ntt

from tests.conftest import ALL_BACKEND_NAMES, BIG_Q, MID_Q, random_residues


class TestMulmodShoup:
    @pytest.mark.parametrize("q", [MID_Q, BIG_Q], ids=["q60", "q124"])
    def test_matches_reference(self, backend, q, rng):
        ctx = backend.make_modulus(q)
        for _ in range(15):
            w = rng.randrange(q)
            w_shoup = (w << 128) // q
            y = random_residues(rng, q, backend.lanes)
            out = backend.block_values(
                backend.mulmod_shoup(
                    backend.load_block(y),
                    backend.broadcast_dw(w),
                    backend.broadcast_dw(w_shoup),
                    ctx,
                )
            )
            assert out == [w * v % q for v in y]

    def test_edge_twiddles(self, backend):
        q = BIG_Q
        ctx = backend.make_modulus(q)
        for w in (0, 1, q - 1):
            w_shoup = (w << 128) // q
            for y in (0, 1, q - 1):
                out = backend.block_values(
                    backend.mulmod_shoup(
                        backend.load_block([y] * backend.lanes),
                        backend.broadcast_dw(w),
                        backend.broadcast_dw(w_shoup),
                        ctx,
                    )
                )
                assert out == [w * y % q] * backend.lanes

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_property_mqx(self, data):
        q = BIG_Q
        backend = get_backend("mqx")
        ctx = backend.make_modulus(q)
        w = data.draw(st.integers(min_value=0, max_value=q - 1))
        y = [data.draw(st.integers(min_value=0, max_value=q - 1)) for _ in range(8)]
        out = backend.block_values(
            backend.mulmod_shoup(
                backend.load_block(y),
                backend.broadcast_dw(w),
                backend.broadcast_dw((w << 128) // q),
                ctx,
            )
        )
        assert out == [w * v % q for v in y]

    def test_cheaper_than_barrett(self, backend, rng):
        q = BIG_Q
        ctx = backend.make_modulus(q)
        y = backend.load_block(random_residues(rng, q, backend.lanes))
        w = backend.broadcast_dw(7)
        ws = backend.broadcast_dw((7 << 128) // q)
        with tracing() as barrett:
            backend.mulmod(y, w, ctx)
        with tracing() as shoup:
            backend.mulmod_shoup(y, w, ws, ctx)
        assert len(shoup) < len(barrett)


class TestShoupNtt:
    def test_forward_matches_naive(self, backend, rng):
        q = BIG_Q
        plan = SimdNtt(32, q, backend, twiddle_mode="shoup")
        x = random_residues(rng, q, 32)
        assert plan.forward(x) == naive_ntt(x, q, root=plan.table.root)

    def test_modes_agree(self, rng):
        q = BIG_Q
        backend = get_backend("avx512")
        barrett = SimdNtt(64, q, backend)
        shoup = SimdNtt(64, q, backend, root=barrett.table.root,
                        twiddle_mode="shoup")
        x = random_residues(rng, q, 64)
        assert barrett.forward(x) == shoup.forward(x)

    def test_inverse_roundtrip(self, rng):
        q = BIG_Q
        plan = SimdNtt(32, q, get_backend("mqx"), twiddle_mode="shoup")
        x = random_residues(rng, q, 32)
        assert plan.inverse(plan.forward(x)) == x

    def test_unknown_mode_rejected(self):
        with pytest.raises(NttParameterError):
            SimdNtt(32, MID_Q, get_backend("scalar"), twiddle_mode="montgomery")


class TestShoupEstimates:
    def test_faster_on_every_backend_and_cpu(self):
        from repro.arith.primes import default_modulus

        q = default_modulus()
        for cpu_key in ("intel_xeon_8352y", "amd_epyc_9654"):
            cpu = get_cpu(cpu_key)
            for name in ALL_BACKEND_NAMES:
                backend = get_backend(name)
                barrett = estimate_ntt(1 << 14, q, backend, cpu)
                shoup = estimate_ntt(1 << 14, q, backend, cpu, twiddle_mode="shoup")
                assert shoup.ns < barrett.ns, (cpu_key, name)
                assert 1.1 < barrett.ns / shoup.ns < 2.0, (cpu_key, name)

    def test_algorithm_label(self):
        from repro.arith.primes import default_modulus

        est = estimate_ntt(
            1 << 12,
            default_modulus(),
            get_backend("mqx"),
            get_cpu("amd_epyc_9654"),
            twiddle_mode="shoup",
        )
        assert est.algorithm == "schoolbook+shoup"

    def test_unknown_mode_rejected(self):
        from repro.arith.primes import default_modulus

        with pytest.raises(ExperimentError):
            estimate_ntt(
                1 << 12,
                default_modulus(),
                get_backend("mqx"),
                get_cpu("amd_epyc_9654"),
                twiddle_mode="montgomery",
            )


class TestExperiment:
    def test_table(self):
        from repro.experiments.extension_shoup import run

        result = run()
        assert len(result.rows) == 8  # 2 CPUs x 4 variants
        for speedup in result.column("speedup"):
            assert 1.1 < float(speedup) < 2.0
