"""Cross-feature integration: the extensions must compose correctly.

These tests drive multiple subsystems through one another - tuned NTT
modes under the negacyclic and RNS layers, MQX feature subsets under the
multi-word layer, codegen over every backend's NTT stage - catching the
composition bugs unit tests cannot.
"""

import random

import pytest

from repro.arith.primes import find_ntt_prime
from repro.codegen.c_emitter import generate_c_function
from repro.isa.trace import tracing
from repro.kernels import get_backend
from repro.kernels.mqx_backend import FEATURE_PRESETS
from repro.machine.cpu import get_cpu
from repro.machine.scheduler import schedule_trace
from repro.machine.uops import SUNNY_COVE, ZEN4
from repro.ntt.negacyclic import NegacyclicNtt
from repro.ntt.reference import negacyclic_schoolbook_polymul
from repro.ntt.simd import SimdNtt
from repro.perf.estimator import estimate_ntt

from tests.conftest import BIG_Q, MID_Q, random_residues


class TestTunedModesUnderNegacyclic:
    """The negacyclic layer builds on SimdNtt; tuned modes must flow."""

    @pytest.mark.parametrize("mode", ["shoup", "lazy"])
    def test_negacyclic_with_tuned_plan(self, mode, rng):
        q = BIG_Q
        backend = get_backend("mqx")
        plan = NegacyclicNtt(16, q, backend)
        # Swap the inner cyclic plan for a tuned one and re-multiply.
        plan.plan = SimdNtt(
            16, q, backend, root=plan.plan.table.root, twiddle_mode=mode
        )
        f = random_residues(rng, q, 16)
        g = random_residues(rng, q, 16)
        assert plan.multiply(f, g) == negacyclic_schoolbook_polymul(f, g, q)


class TestMqxSubsetsEverywhere:
    @pytest.mark.parametrize("label", sorted(FEATURE_PRESETS))
    def test_subset_backends_run_tuned_ntts(self, label, rng):
        q = BIG_Q
        backend = get_backend("mqx", features=FEATURE_PRESETS[label])
        for mode in ("barrett", "shoup", "lazy"):
            plan = SimdNtt(16, q, backend, twiddle_mode=mode)
            x = random_residues(rng, q, 16)
            assert plan.inverse(plan.forward(x)) == x, (label, mode)

    @pytest.mark.parametrize("label", sorted(FEATURE_PRESETS))
    def test_subset_traces_schedule_on_both_cpus(self, label, rng):
        q = BIG_Q
        backend = get_backend("mqx", features=FEATURE_PRESETS[label])
        ctx = backend.make_modulus(q)
        a = backend.load_block(random_residues(rng, q, 8))
        b = backend.load_block(random_residues(rng, q, 8))
        with tracing() as t:
            backend.butterfly(a, b, backend.broadcast_dw(3), ctx)
        for micro in (SUNNY_COVE, ZEN4):
            assert schedule_trace(t, micro).port_bound > 0


class TestEstimatorInvariants:
    """Properties the estimator must preserve across every configuration."""

    @pytest.mark.parametrize("mode", ["barrett", "shoup", "lazy"])
    def test_cycles_scale_with_blocks(self, mode):
        cpu = get_cpu("amd_epyc_9654")
        be = get_backend("avx512")
        small = estimate_ntt(1 << 10, BIG_Q, be, cpu, twiddle_mode=mode)
        big = estimate_ntt(1 << 11, BIG_Q, be, cpu, twiddle_mode=mode)
        # 2x points, 11/10 stages: cycles ratio = 2 * 11/10 exactly while
        # both sizes stay in the same cache level.
        assert big.cycles / small.cycles == pytest.approx(2 * 11 / 10, rel=0.01)

    def test_modulus_width_does_not_change_structure(self):
        """Same instruction stream for any 124-bit-class modulus."""
        cpu = get_cpu("intel_xeon_8352y")
        be = get_backend("mqx")
        q2 = find_ntt_prime(124, 1 << 12)
        a = estimate_ntt(1 << 12, BIG_Q, be, cpu)
        b = estimate_ntt(1 << 12, q2, be, cpu)
        assert a.cycles == b.cycles

    def test_smaller_modulus_changes_only_shifts(self):
        """A 60-bit modulus alters shift immediates, not the shape."""
        cpu = get_cpu("intel_xeon_8352y")
        be = get_backend("avx512")
        wide = estimate_ntt(1 << 12, BIG_Q, be, cpu)
        narrow = estimate_ntt(1 << 12, MID_Q, be, cpu)
        assert narrow.cycles == pytest.approx(wide.cycles, rel=0.15)

    @pytest.mark.parametrize("name", ["scalar", "avx2", "avx512", "mqx"])
    def test_lazy_never_slower(self, name):
        for cpu_key in ("intel_xeon_8352y", "amd_epyc_9654"):
            cpu = get_cpu(cpu_key)
            be = get_backend(name)
            barrett = estimate_ntt(1 << 14, BIG_Q, be, cpu)
            lazy = estimate_ntt(1 << 14, BIG_Q, be, cpu, twiddle_mode="lazy")
            assert lazy.ns <= barrett.ns, (name, cpu_key)


class TestCodegenOverTunedKernels:
    def test_lazy_butterfly_codegen(self):
        """The lazy butterfly lowers to C without unmapped instructions."""
        rng = random.Random(3)
        q = BIG_Q
        backend = get_backend("avx512")
        ctx = backend.make_modulus(q)
        w = rng.randrange(q)
        with tracing() as t:
            a = backend.load_block(random_residues(rng, q, 8))
            b = backend.load_block(random_residues(rng, q, 8))
            tw = backend.broadcast_dw(w)
            tw_s = backend.broadcast_dw((w << 128) // q)
            plus, minus = backend.butterfly_lazy(a, b, tw, tw_s, ctx)
            backend.store_block(plus)
            backend.store_block(minus)
        source = generate_c_function(t, "butterfly_lazy_avx512")
        assert "unmapped" not in source
        assert "_mm512_mullo_epi64" in source

    def test_codegen_deterministic_modulo_seed(self):
        from repro.codegen.c_emitter import generate_kernel_source

        backend = get_backend("mqx")
        a = generate_kernel_source(backend, "mulmod", BIG_Q, seed=1)
        b = generate_kernel_source(backend, "mulmod", BIG_Q, seed=1)
        # Variable numbering derives from fresh vids, so only the
        # instruction skeleton is compared.
        import re

        skel_a = re.sub(r"[vktfy]\d+", "R", a)
        skel_b = re.sub(r"[vktfy]\d+", "R", b)
        assert skel_a == skel_b


class TestRnsWithTunedBackend:
    def test_rns_ring_on_mqx_subset(self, rng):
        from repro.rns import RnsBasis, RnsPolynomialRing

        basis = RnsBasis.generate(2, 62, 32)
        backend = get_backend("mqx", features=FEATURE_PRESETS["+Mh,C"])
        ring = RnsPolynomialRing(16, basis, backend)
        big_q = basis.modulus
        f = [rng.randrange(big_q) for _ in range(16)]
        g = [rng.randrange(big_q) for _ in range(16)]
        out = ring.mul(ring.encode(f), ring.encode(g))
        assert out.coefficients() == negacyclic_schoolbook_polymul(f, g, big_q)
