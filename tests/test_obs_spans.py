"""Span tracer: nesting, disabled no-op behavior, session lifecycle."""

import pytest

from repro.obs import session as obs_session
from repro.obs.spans import span


@pytest.fixture(autouse=True)
def _clean_session():
    """Never leak an observability session across tests."""
    obs_session.disable()
    yield
    obs_session.disable()


class TestDisabled:
    def test_disabled_span_yields_none(self):
        with span("phase") as record:
            assert record is None

    def test_disabled_records_nothing(self):
        with span("phase"):
            pass
        assert obs_session.current() is None

    def test_enable_disable_roundtrip(self):
        assert not obs_session.is_enabled()
        session = obs_session.enable()
        assert obs_session.is_enabled()
        assert obs_session.current() is session
        obs_session.disable()
        assert not obs_session.is_enabled()


class TestObserving:
    def test_context_manager_scopes_session(self):
        with obs_session.observing() as session:
            assert obs_session.current() is session
        assert obs_session.current() is None

    def test_reentrant_joins_outer_session(self):
        with obs_session.observing() as outer:
            with obs_session.observing() as inner:
                assert inner is outer
            # Leaving the inner block must not kill the outer session.
            assert obs_session.current() is outer
        assert obs_session.current() is None

    def test_session_dropped_on_exception(self):
        with pytest.raises(RuntimeError):
            with obs_session.observing():
                raise RuntimeError("boom")
        assert obs_session.current() is None


class TestSpanRecording:
    def test_records_name_and_duration(self):
        with obs_session.observing() as session:
            with span("work") as record:
                assert record is not None
                assert record.name == "work"
        [record] = session.spans.records
        assert record.duration_s >= 0.0
        assert record.end_s >= record.start_s

    def test_attrs_captured(self):
        with obs_session.observing() as session:
            with span("work", kernel="ntt", logn=14):
                pass
        assert session.spans.records[0].attrs == {"kernel": "ntt", "logn": 14}

    def test_nesting_depth_and_parent(self):
        with obs_session.observing() as session:
            with span("outer"):
                with span("inner-a"):
                    pass
                with span("inner-b"):
                    with span("leaf"):
                        pass
        by_name = {r.name: r for r in session.spans.records}
        assert by_name["outer"].depth == 0
        assert by_name["outer"].parent is None
        assert by_name["inner-a"].depth == 1
        assert by_name["inner-a"].parent == by_name["outer"].index
        assert by_name["leaf"].depth == 2
        assert by_name["leaf"].parent == by_name["inner-b"].index

    def test_children_contained_in_parent_interval(self):
        with obs_session.observing() as session:
            with span("outer"):
                with span("inner"):
                    pass
        outer, inner = session.spans.records
        assert outer.start_s <= inner.start_s
        assert inner.end_s <= outer.end_s

    def test_span_closed_on_exception(self):
        with obs_session.observing() as session:
            with pytest.raises(ValueError):
                with span("fails"):
                    raise ValueError("boom")
            with span("continues"):
                pass
        fails, continues = session.spans.records
        assert fails.duration_s > 0.0
        assert continues.depth == 0  # stack unwound despite the exception


class TestAggregate:
    def test_aggregate_counts_and_totals(self):
        with obs_session.observing() as session:
            for _ in range(3):
                with span("repeated"):
                    pass
            with span("once"):
                pass
        agg = session.spans.aggregate()
        assert agg["repeated"]["count"] == 3
        assert agg["once"]["count"] == 1
        assert agg["repeated"]["total_s"] >= agg["repeated"]["max_s"]
        assert agg["repeated"]["mean_s"] == pytest.approx(
            agg["repeated"]["total_s"] / 3
        )
