"""Unit tests for the register-value types (Vec, Mask, SVal)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import IsaError, LaneMismatchError, MaskWidthError
from repro.isa.types import Mask, SVal, Vec, check_mask_fits, check_same_shape

U64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestVec:
    def test_lanes_and_bits(self):
        v = Vec([1, 2, 3, 4, 5, 6, 7, 8])
        assert v.lanes == 8
        assert v.width == 64
        assert v.bits == 512

    def test_values_are_wrapped_to_width(self):
        v = Vec([1 << 64, (1 << 64) + 3], width=64)
        assert v.to_list() == [0, 3]

    def test_broadcast_fills_all_lanes(self):
        v = Vec.broadcast(7, 4)
        assert v.to_list() == [7, 7, 7, 7]

    def test_zeros(self):
        assert Vec.zeros(8).to_list() == [0] * 8

    def test_lane_access(self):
        v = Vec([10, 20, 30, 40])
        assert v.lane(2) == 30

    def test_empty_vector_rejected(self):
        with pytest.raises(IsaError):
            Vec([])

    def test_immutable(self):
        v = Vec([1, 2])
        with pytest.raises(AttributeError):
            v.width = 32

    def test_equality_ignores_vid(self):
        assert Vec([1, 2, 3, 4]) == Vec([1, 2, 3, 4])
        assert Vec([1, 2, 3, 4]) != Vec([1, 2, 3, 5])

    def test_fresh_vids_are_unique(self):
        a, b = Vec([1]), Vec([1])
        assert a.vid != b.vid

    def test_hashable(self):
        assert len({Vec([1, 2]), Vec([1, 2]), Vec([3, 4])}) == 2

    def test_repr_shows_shape(self):
        assert "Vec4x64" in repr(Vec([0, 0, 0, 0]))

    def test_check_same_shape_rejects_mismatch(self):
        with pytest.raises(LaneMismatchError):
            check_same_shape(Vec([1, 2]), Vec([1, 2, 3, 4]))


class TestMask:
    def test_from_bools_lane_order(self):
        m = Mask.from_bools([True, False, False, True])
        assert m.value == 0b1001
        assert m.to_bools() == [True, False, False, True]

    def test_value_is_truncated_to_lanes(self):
        assert Mask(0xFFFF, 8).value == 0xFF

    def test_zeros_and_ones(self):
        assert Mask.zeros(8).value == 0
        assert Mask.ones(8).value == 0xFF

    def test_bit_out_of_range(self):
        with pytest.raises(MaskWidthError):
            Mask(0, 8).bit(8)

    def test_zero_lanes_rejected(self):
        with pytest.raises(IsaError):
            Mask(0, 0)

    def test_immutable(self):
        m = Mask(3, 8)
        with pytest.raises(AttributeError):
            m.value = 0

    def test_equality(self):
        assert Mask(5, 8) == Mask(5, 8)
        assert Mask(5, 8) != Mask(5, 4)

    def test_check_mask_fits(self):
        with pytest.raises(MaskWidthError):
            check_mask_fits(Mask(0, 4), Vec([0] * 8))


class TestSVal:
    @given(U64)
    def test_int_roundtrip(self, x):
        assert int(SVal(x)) == x

    def test_wraps_to_width(self):
        assert SVal((1 << 64) + 9).value == 9

    def test_flag_width(self):
        assert SVal(3, width=1).value == 1

    def test_bool_conversion(self):
        assert bool(SVal(1, width=1))
        assert not bool(SVal(0, width=1))

    def test_index_protocol(self):
        assert [10, 20, 30][SVal(1)] == 20

    def test_equality_with_int(self):
        assert SVal(5) == 5
        assert SVal(5) == SVal(5)

    def test_immutable(self):
        v = SVal(1)
        with pytest.raises(AttributeError):
            v.value = 2
