"""Tests for the definitional NTT and schoolbook polynomial multiply."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arith.primes import find_ntt_prime, root_of_unity
from repro.errors import NttParameterError
from repro.ntt.reference import (
    naive_intt,
    naive_ntt,
    negacyclic_schoolbook_polymul,
    schoolbook_polymul,
)

from tests.conftest import MID_Q, SMALL_Q, random_residues


class TestNaiveNtt:
    def test_worked_example_mod_5(self):
        # The paper's Section 2.3 example ring: polynomials mod 5, n = 4.
        q = 5
        w = root_of_unity(4, q)
        x = [1, 2, 3, 1]  # f(x) = x^3 + 3x^2 + 2x + 1
        y = naive_ntt(x, q, root=w)
        # y_k = f(w^k) by definition.
        assert y == [
            sum(c * pow(w, j * k, q) for j, c in enumerate(x)) % q
            for k in range(4)
        ]

    def test_constant_input_transforms_to_impulse(self):
        q = SMALL_Q
        n = 8
        y = naive_ntt([1] * n, q)
        assert y[0] == n % q
        assert all(v == 0 for v in y[1:])

    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_roundtrip(self, data):
        q = MID_Q
        n = data.draw(st.sampled_from([2, 4, 8, 16]))
        x = [data.draw(st.integers(min_value=0, max_value=q - 1)) for _ in range(n)]
        assert naive_intt(naive_ntt(x, q), q) == x

    def test_linearity(self, rng):
        q = SMALL_Q
        n = 8
        x = random_residues(rng, q, n)
        y = random_residues(rng, q, n)
        combined = [(a + b) % q for a, b in zip(x, y)]
        fx, fy = naive_ntt(x, q), naive_ntt(y, q)
        assert naive_ntt(combined, q) == [(a + b) % q for a, b in zip(fx, fy)]

    def test_rejects_non_power_of_two(self):
        with pytest.raises(NttParameterError):
            naive_ntt([1, 2, 3], SMALL_Q)

    def test_rejects_unreduced(self):
        with pytest.raises(Exception):
            naive_ntt([SMALL_Q, 0], SMALL_Q)


class TestSchoolbookPolymul:
    def test_known_product(self):
        # (x + 1)(x + 2) = x^2 + 3x + 2 mod 7.
        assert schoolbook_polymul([1, 1], [2, 1], 7) == [2, 3, 1]

    def test_output_length(self):
        out = schoolbook_polymul([1] * 5, [1] * 3, 17)
        assert len(out) == 7

    @given(st.data())
    @settings(max_examples=50, deadline=None)
    def test_matches_bigint_polynomial_product(self, data):
        q = SMALL_Q
        f = [data.draw(st.integers(min_value=0, max_value=q - 1)) for _ in range(4)]
        g = [data.draw(st.integers(min_value=0, max_value=q - 1)) for _ in range(4)]
        out = schoolbook_polymul(f, g, q)
        for k in range(len(out)):
            expected = sum(
                f[i] * g[k - i]
                for i in range(len(f))
                if 0 <= k - i < len(g)
            ) % q
            assert out[k] == expected

    def test_rejects_empty(self):
        with pytest.raises(NttParameterError):
            schoolbook_polymul([], [1], 7)


class TestNegacyclic:
    def test_wraparound_is_negated(self):
        # x * x = x^2 = -1 in Z_q[x]/(x^2 + 1).
        q = 17
        out = negacyclic_schoolbook_polymul([0, 1], [0, 1], q)
        assert out == [q - 1, 0]

    def test_matches_full_product_reduction(self, rng):
        q = SMALL_Q
        n = 8
        f = random_residues(rng, q, n)
        g = random_residues(rng, q, n)
        full = schoolbook_polymul(f, g, q)
        out = negacyclic_schoolbook_polymul(f, g, q)
        for k in range(n):
            high = full[k + n] if k + n < len(full) else 0
            assert out[k] == (full[k] - high) % q

    def test_rejects_length_mismatch(self):
        with pytest.raises(NttParameterError):
            negacyclic_schoolbook_polymul([1, 2], [1], 7)
