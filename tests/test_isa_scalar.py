"""Semantics tests for the scalar x86-64 instruction simulator."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import IsaError
from repro.isa import scalar as s
from repro.isa.trace import tracing

MASK64 = (1 << 64) - 1
U64 = st.integers(min_value=0, max_value=MASK64)
BIT = st.integers(min_value=0, max_value=1)


class TestAddSub:
    @given(U64, U64)
    def test_add64_matches_wide_sum(self, a, b):
        total, carry = s.add64(a, b)
        assert int(total) == (a + b) & MASK64
        assert int(carry) == (a + b) >> 64

    @given(U64, U64, BIT)
    def test_adc64_matches_wide_sum(self, a, b, ci):
        total, carry = s.adc64(a, b, ci)
        assert int(total) == (a + b + ci) & MASK64
        assert int(carry) == (a + b + ci) >> 64

    def test_adc_carry_chain_edge(self):
        # max + max + 1 = 2^65 - 1: result all-ones, carry set.
        total, carry = s.adc64(MASK64, MASK64, 1)
        assert int(total) == MASK64
        assert int(carry) == 1

    @given(U64, U64)
    def test_sub64_borrow(self, a, b):
        diff, borrow = s.sub64(a, b)
        assert int(diff) == (a - b) & MASK64
        assert int(borrow) == (1 if a < b else 0)

    @given(U64, U64, BIT)
    def test_sbb64(self, a, b, bi):
        diff, borrow = s.sbb64(a, b, bi)
        assert int(diff) == (a - b - bi) & MASK64
        assert int(borrow) == (1 if a - b - bi < 0 else 0)

    def test_sbb_borrow_edge(self):
        diff, borrow = s.sbb64(0, 0, 1)
        assert int(diff) == MASK64
        assert int(borrow) == 1


class TestMultiply:
    @given(U64, U64)
    def test_mul64_widening(self, a, b):
        hi, lo = s.mul64(a, b)
        assert (int(hi) << 64) | int(lo) == a * b

    @given(U64, U64)
    def test_imul64_low_only(self, a, b):
        assert int(s.imul64(a, b)) == (a * b) & MASK64


class TestShifts:
    @given(U64, st.integers(min_value=0, max_value=63))
    def test_shl_shr_semantics(self, a, amount):
        assert int(s.shl64(a, amount)) == (a << amount) & MASK64
        assert int(s.shr64(a, amount)) == a >> amount

    def test_shift_range_checked(self):
        with pytest.raises(IsaError):
            s.shl64(1, 64)
        with pytest.raises(IsaError):
            s.shr64(1, -1)

    @given(U64, U64, st.integers(min_value=1, max_value=63))
    def test_shrd_double_shift(self, hi, lo, amount):
        combined = (hi << 64) | lo
        assert int(s.shrd64(hi, lo, amount)) == (combined >> amount) & MASK64

    def test_shrd_rejects_zero_and_64(self):
        with pytest.raises(IsaError):
            s.shrd64(1, 1, 0)
        with pytest.raises(IsaError):
            s.shrd64(1, 1, 64)


class TestLogicCompare:
    @given(U64, U64)
    def test_bitwise_ops(self, a, b):
        assert int(s.and64(a, b)) == a & b
        assert int(s.or64(a, b)) == a | b
        assert int(s.xor64(a, b)) == a ^ b

    @given(U64, U64)
    def test_unsigned_compares(self, a, b):
        assert bool(s.cmp_lt64(a, b)) == (a < b)
        assert bool(s.cmp_le64(a, b)) == (a <= b)
        assert bool(s.cmp_eq64(a, b)) == (a == b)

    @given(BIT, BIT)
    def test_flag_logic(self, a, b):
        assert int(s.or1(a, b)) == (a | b)
        assert int(s.and1(a, b)) == (a & b)
        assert int(s.not1(a)) == 1 - a

    @given(BIT, U64, U64)
    def test_cmov(self, flag, x, y):
        assert int(s.cmov64(flag, x, y)) == (x if flag else y)


class TestDivide:
    @given(U64, U64, st.integers(min_value=1, max_value=MASK64))
    def test_div64_when_quotient_fits(self, hi, lo, d):
        numerator = (hi << 64) | lo
        if numerator // d > MASK64:
            with pytest.raises(IsaError):
                s.div64(hi, lo, d)
        else:
            q, r = s.div64(hi, lo, d)
            assert int(q) == numerator // d
            assert int(r) == numerator % d

    def test_div_by_zero_faults(self):
        with pytest.raises(IsaError):
            s.div64(0, 1, 0)

    def test_quotient_overflow_faults(self):
        with pytest.raises(IsaError):
            s.div64(1, 0, 1)  # 2^64 / 1 does not fit 64 bits


class TestMemoryAndOverhead:
    def test_load_store_tagging(self):
        with tracing() as t:
            value = s.load64(42)
            s.store64(value)
        assert int(value) == 42
        assert t.memory_ops() == (1, 1)

    def test_call_overhead_kinds(self):
        with tracing() as t:
            s.call_overhead("call")
            s.call_overhead("alloc")
        assert [e.op for e in t] == ["call", "alloc"]

    def test_call_overhead_rejects_unknown(self):
        with pytest.raises(IsaError):
            s.call_overhead("teleport")

    def test_mov_copies(self):
        with tracing() as t:
            out = s.mov64(7)
        assert int(out) == 7
        assert t.entries[0].op == "mov64"


class TestTracingShape:
    def test_add_emits_one_entry_with_dataflow(self):
        with tracing() as t:
            total, carry = s.add64(3, 4)
        (entry,) = t.entries
        assert entry.op == "add64"
        assert set(entry.dests) == {total.vid, carry.vid}

    def test_flag_dependency_preserved_through_adc(self):
        with tracing() as t:
            _, c = s.add64(MASK64, 1)
            out, _ = s.adc64(0, 0, c)
        assert c.vid in t.entries[1].srcs
        assert int(out) == 1
