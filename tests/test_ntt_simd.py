"""Tests for the backend-driven SIMD NTT (all four ISA variants)."""

import pytest

from repro.errors import NttParameterError
from repro.isa.trace import tracing
from repro.kernels import get_backend
from repro.kernels.mqx_backend import FEATURE_PRESETS
from repro.ntt.reference import naive_ntt
from repro.ntt.simd import SimdNtt
from repro.ntt.twiddles import bit_reverse_permutation

from tests.conftest import ALL_BACKEND_NAMES, BIG_Q, MID_Q, random_residues


class TestCorrectness:
    @pytest.mark.parametrize("n", [16, 32, 64])
    def test_forward_matches_naive(self, backend, n, rng):
        q = BIG_Q
        plan = SimdNtt(n, q, backend)
        x = random_residues(rng, q, n)
        assert plan.forward(x) == naive_ntt(x, q, root=plan.table.root)

    def test_inverse_roundtrip(self, backend, rng):
        q = BIG_Q
        plan = SimdNtt(32, q, backend)
        x = random_residues(rng, q, 32)
        assert plan.inverse(plan.forward(x)) == x

    def test_raw_order_roundtrip(self, backend, rng):
        q = BIG_Q
        plan = SimdNtt(32, q, backend)
        x = random_residues(rng, q, 32)
        raw = plan.forward(x, natural_order=False)
        assert bit_reverse_permutation(raw) == plan.forward(x)
        assert plan.inverse(raw, natural_order=False) == x

    def test_karatsuba_plan_matches(self, backend, rng):
        q = BIG_Q
        plan = SimdNtt(32, q, backend, algorithm="karatsuba")
        x = random_residues(rng, q, 32)
        assert plan.forward(x) == naive_ntt(x, q, root=plan.table.root)

    def test_backends_agree_with_each_other(self, rng):
        q = MID_Q
        x = random_residues(rng, q, 64)
        results = []
        root = None
        for name in ALL_BACKEND_NAMES:
            plan = SimdNtt(64, q, get_backend(name), root=root)
            root = plan.table.root  # pin all plans to the same root
            results.append(plan.forward(x))
        assert all(result == results[0] for result in results)

    def test_mqx_presets_compute_identical_transforms(self, rng):
        q = BIG_Q
        x = random_residues(rng, q, 32)
        baseline = None
        root = None
        for label, features in sorted(FEATURE_PRESETS.items()):
            plan = SimdNtt(32, q, get_backend("mqx", features=features), root=root)
            root = plan.table.root
            out = plan.forward(x)
            if baseline is None:
                baseline = out
            assert out == baseline, label


class TestValidation:
    def test_rejects_undersized_transform(self):
        with pytest.raises(NttParameterError):
            SimdNtt(8, BIG_Q, get_backend("avx512"))  # needs n >= 16

    def test_scalar_accepts_smallest(self):
        plan = SimdNtt(2, MID_Q, get_backend("scalar"))
        assert plan.forward([1, 2]) == naive_ntt([1, 2], MID_Q, root=plan.table.root)

    def test_rejects_wrong_length_input(self):
        plan = SimdNtt(32, MID_Q, get_backend("scalar"))
        with pytest.raises(NttParameterError):
            plan.forward([0] * 16)

    def test_rejects_unreduced_input(self):
        plan = SimdNtt(32, MID_Q, get_backend("scalar"))
        with pytest.raises(Exception):
            plan.forward([MID_Q] + [0] * 31)

    def test_properties(self):
        plan = SimdNtt(64, BIG_Q, get_backend("avx512"))
        assert plan.n == 64
        assert plan.q == BIG_Q
        assert plan.butterflies == 32 * 6
        assert plan.blocks_per_stage() == 4
        assert plan.stage_working_set() == 2 * 64 * 16 + 32 * 16


class TestPaperMemoryClaims:
    def test_2_15_stage_holds_about_1mb(self):
        """Section 5.4: a 2^15-point NTT stage holds ~1 MB of residues."""
        plan = SimdNtt.__new__(SimdNtt)  # working-set math only needs n
        buffers = 2 * (1 << 15) * 16
        assert buffers == 1 << 20  # exactly 1 MiB

    def test_2_16_exceeds_intel_l2(self):
        from repro.machine.cpu import get_cpu

        stage_bytes = 2 * (1 << 16) * 16
        assert stage_bytes > get_cpu("intel_xeon_8352y").l2_bytes_per_core


class TestTracing:
    def test_trace_counts_scale_with_size(self):
        q = MID_Q
        plan = SimdNtt(32, q, get_backend("avx512"))
        x = list(range(32))
        with tracing() as t:
            plan.forward(x)
        # 5 stages x 2 blocks per stage; each block: 6 loads + 4 stores.
        loads, stores = t.memory_ops()
        assert loads == 5 * 2 * 6
        assert stores == 5 * 2 * 4

    def test_interleave_instructions_present(self):
        q = MID_Q
        plan = SimdNtt(32, q, get_backend("avx512"))
        with tracing() as t:
            plan.forward(list(range(32)))
        assert t.count("vpermt2q_zmm") == 5 * 2 * 4  # 4 per block
