"""Semantics tests for the AVX-512 intrinsic simulator."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import IsaError
from repro.isa import avx512 as v
from repro.isa.trace import tracing
from repro.isa.types import Mask, Vec

MASK64 = (1 << 64) - 1
LANES = v.LANES

lane_values = st.lists(
    st.integers(min_value=0, max_value=MASK64), min_size=LANES, max_size=LANES
)


def vecs(draw_a, draw_b):
    return Vec(draw_a), Vec(draw_b)


class TestArithmetic:
    @given(lane_values, lane_values)
    def test_add_wraps_per_lane(self, a, b):
        out = v.mm512_add_epi64(Vec(a), Vec(b))
        assert out.to_list() == [(x + y) & MASK64 for x, y in zip(a, b)]

    @given(lane_values, lane_values)
    def test_sub_wraps_per_lane(self, a, b):
        out = v.mm512_sub_epi64(Vec(a), Vec(b))
        assert out.to_list() == [(x - y) & MASK64 for x, y in zip(a, b)]

    @given(lane_values, lane_values, st.integers(min_value=0, max_value=255))
    def test_masked_add_merges(self, a, b, bits):
        k = Mask(bits, LANES)
        src = Vec([i * 111 for i in range(LANES)])
        out = v.mm512_mask_add_epi64(src, k, Vec(a), Vec(b))
        for i in range(LANES):
            expected = (a[i] + b[i]) & MASK64 if k.bit(i) else src.lane(i)
            assert out.lane(i) == expected

    @given(lane_values, lane_values, st.integers(min_value=0, max_value=255))
    def test_masked_sub_merges(self, a, b, bits):
        k = Mask(bits, LANES)
        src = Vec([i for i in range(LANES)])
        out = v.mm512_mask_sub_epi64(src, k, Vec(a), Vec(b))
        for i in range(LANES):
            expected = (a[i] - b[i]) & MASK64 if k.bit(i) else src.lane(i)
            assert out.lane(i) == expected

    def test_rejects_wrong_shape(self):
        with pytest.raises(IsaError):
            v.mm512_add_epi64(Vec([1, 2, 3, 4]), Vec([1, 2, 3, 4]))


class TestCompare:
    @given(lane_values, lane_values)
    def test_unsigned_lt(self, a, b):
        mask = v.mm512_cmp_epu64_mask(Vec(a), Vec(b), v.CMPINT_LT)
        assert mask.to_bools() == [x < y for x, y in zip(a, b)]

    @pytest.mark.parametrize(
        "predicate,op",
        [
            (v.CMPINT_EQ, lambda x, y: x == y),
            (v.CMPINT_LE, lambda x, y: x <= y),
            (v.CMPINT_NE, lambda x, y: x != y),
            (v.CMPINT_NLT, lambda x, y: x >= y),
            (v.CMPINT_NLE, lambda x, y: x > y),
            (v.CMPINT_FALSE, lambda x, y: False),
            (v.CMPINT_TRUE, lambda x, y: True),
        ],
    )
    def test_all_predicates(self, predicate, op):
        rng = random.Random(predicate)
        a = [rng.randrange(1 << 64) for _ in range(LANES)]
        b = list(a)
        b[0] = a[0]  # force an equal lane
        mask = v.mm512_cmp_epu64_mask(Vec(a), Vec(b), predicate)
        assert mask.to_bools() == [op(x, y) for x, y in zip(a, b)]

    def test_unknown_predicate_rejected(self):
        with pytest.raises(IsaError):
            v.mm512_cmp_epu64_mask(Vec.zeros(8), Vec.zeros(8), 99)

    def test_signed_compare(self):
        a = Vec([MASK64, 1] + [0] * 6)  # -1 signed
        b = Vec([0] * 8)
        mask = v.mm512_cmp_epi64_mask(a, b, v.CMPINT_LT)
        assert mask.to_bools() == [True] + [False] * 7

    def test_masked_compare_zeroing(self):
        a = Vec([0] * 8)
        b = Vec([1] * 8)
        k = Mask(0b1010_1010, 8)
        out = v.mm512_mask_cmp_epu64_mask(k, a, b, v.CMPINT_LT)
        assert out.value == 0b1010_1010


class TestBlendAndMaskOps:
    def test_blend_selects_b_where_set(self):
        a, b = Vec([0] * 8), Vec([9] * 8)
        out = v.mm512_mask_blend_epi64(Mask(0b0000_1111, 8), a, b)
        assert out.to_list() == [9, 9, 9, 9, 0, 0, 0, 0]

    def test_mask_register_ops(self):
        a, b = Mask(0b1100, 8), Mask(0b1010, 8)
        assert v.kor8(a, b).value == 0b1110
        assert v.kand8(a, b).value == 0b1000
        assert v.kxor8(a, b).value == 0b0110
        assert v.knot8(a).value == 0b1111_0011
        assert v.kandn8(a, b).value == 0b0010


class TestMultiply:
    @given(lane_values, lane_values)
    def test_mullo_low_64(self, a, b):
        out = v.mm512_mullo_epi64(Vec(a), Vec(b))
        assert out.to_list() == [(x * y) & MASK64 for x, y in zip(a, b)]

    @given(lane_values, lane_values)
    def test_mul_epu32_uses_low_halves(self, a, b):
        out = v.mm512_mul_epu32(Vec(a), Vec(b))
        mask32 = (1 << 32) - 1
        assert out.to_list() == [(x & mask32) * (y & mask32) for x, y in zip(a, b)]

    @given(lane_values, lane_values)
    def test_wide_mul_emulation_exact(self, a, b):
        hi, lo = v.mul64_wide_emulated(Vec(a), Vec(b))
        for i in range(LANES):
            assert (hi.lane(i) << 64) | lo.lane(i) == a[i] * b[i]

    def test_wide_mul_edge_all_ones(self):
        ones = Vec([MASK64] * 8)
        hi, lo = v.mul64_wide_emulated(ones, ones)
        product = MASK64 * MASK64
        assert hi.to_list() == [product >> 64] * 8
        assert lo.to_list() == [product & MASK64] * 8


class TestShiftsLogic:
    @given(lane_values, st.integers(min_value=0, max_value=64))
    def test_srli_slli(self, a, amount):
        va = Vec(a)
        assert v.mm512_srli_epi64(va, amount).to_list() == [
            x >> amount if amount < 64 else 0 for x in a
        ]
        assert v.mm512_slli_epi64(va, amount).to_list() == [
            (x << amount) & MASK64 if amount < 64 else 0 for x in a
        ]

    def test_bitwise(self):
        a, b = Vec([0b1100] * 8), Vec([0b1010] * 8)
        assert v.mm512_and_epi64(a, b).to_list() == [0b1000] * 8
        assert v.mm512_or_epi64(a, b).to_list() == [0b1110] * 8
        assert v.mm512_xor_epi64(a, b).to_list() == [0b0110] * 8

    def test_max_epu64_is_unsigned(self):
        a = Vec([MASK64] + [0] * 7)
        b = Vec([1] * 8)
        assert v.mm512_max_epu64(a, b).lane(0) == MASK64


class TestPermutes:
    def test_unpacklo(self):
        a = Vec(list(range(8)))
        b = Vec([x + 10 for x in range(8)])
        assert v.mm512_unpacklo_epi64(a, b).to_list() == [0, 10, 2, 12, 4, 14, 6, 16]

    def test_unpackhi(self):
        a = Vec(list(range(8)))
        b = Vec([x + 10 for x in range(8)])
        assert v.mm512_unpackhi_epi64(a, b).to_list() == [1, 11, 3, 13, 5, 15, 7, 17]

    def test_permutex2var_selects_across_sources(self):
        a = Vec(list(range(8)))
        b = Vec([x + 100 for x in range(8)])
        idx = Vec([0, 8, 1, 9, 2, 10, 3, 11])
        out = v.mm512_permutex2var_epi64(a, idx, b)
        assert out.to_list() == [0, 100, 1, 101, 2, 102, 3, 103]

    def test_permutexvar(self):
        a = Vec([10, 11, 12, 13, 14, 15, 16, 17])
        idx = Vec([7, 6, 5, 4, 3, 2, 1, 0])
        assert v.mm512_permutexvar_epi64(idx, a).to_list() == list(
            reversed(a.to_list())
        )


class TestTracing:
    def test_set1_hoisted_by_default(self):
        with tracing() as t:
            v.mm512_set1_epi64(5)
        assert len(t) == 0

    def test_set1_costed_when_requested(self):
        with tracing() as t:
            v.mm512_set1_epi64(5, hoisted=False)
        assert t.entries[0].op == "vpbroadcastq_zmm"

    def test_load_store_tags(self):
        with tracing() as t:
            x = v.mm512_load_si512(list(range(8)))
            v.mm512_store_si512(x)
        assert t.memory_ops() == (1, 1)
        assert t.entries[0].op == "vmovdqu64_load_zmm"

    def test_register_copy(self):
        with tracing() as t:
            out = v.mm512_movdqa64(Vec(list(range(8))))
        assert out.to_list() == list(range(8))
        assert t.entries[0].op == "vmovdqa64_zmm"
