"""Tests for the KNC heritage instructions and MQX's lineage claim."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import IsaError
from repro.isa import knc
from repro.isa import mqx
from repro.isa.types import Mask, Vec

MASK32 = (1 << 32) - 1
lane32 = st.lists(
    st.integers(min_value=0, max_value=MASK32), min_size=16, max_size=16
)
mask16 = st.integers(min_value=0, max_value=(1 << 16) - 1)


class TestKncSemantics:
    @given(lane32, lane32, mask16)
    def test_adc(self, a, b, ci_bits):
        ci = Mask(ci_bits, 16)
        total, co = knc.mm512_adc_epi32(Vec(a, width=32), ci, Vec(b, width=32))
        for i in range(16):
            wide = a[i] + b[i] + (1 if ci.bit(i) else 0)
            assert total.lane(i) == wide & MASK32
            assert co.bit(i) == (wide >> 32 != 0)

    @given(lane32, lane32, mask16)
    def test_sbb(self, a, b, bi_bits):
        bi = Mask(bi_bits, 16)
        diff, bo = knc.mm512_sbb_epi32(Vec(a, width=32), bi, Vec(b, width=32))
        for i in range(16):
            wide = a[i] - b[i] - (1 if bi.bit(i) else 0)
            assert diff.lane(i) == wide & MASK32
            assert bo.bit(i) == (wide < 0)

    @given(lane32, lane32)
    def test_mulhi_mullo_form_widening_pair(self, a, b):
        hi = knc.mm512_mulhi_epi32(Vec(a, width=32), Vec(b, width=32))
        lo = knc.mm512_mullo_epi32(Vec(a, width=32), Vec(b, width=32))
        for i in range(16):
            assert (hi.lane(i) << 32) | lo.lane(i) == a[i] * b[i]

    def test_rejects_64bit_registers(self):
        with pytest.raises(IsaError):
            knc.mm512_adc_epi32(Vec([0] * 8), Mask.zeros(16), Vec([0] * 8))
        with pytest.raises(IsaError):
            knc.mm512_adc_epi32(
                Vec([0] * 16, width=32), Mask.zeros(8), Vec([0] * 16, width=32)
            )


class TestMqxLineage:
    """Section 4.1: each MQX instruction is a width-doubled KNC ancestor."""

    @given(
        st.lists(st.integers(min_value=0, max_value=MASK32), min_size=8, max_size=8),
        st.lists(st.integers(min_value=0, max_value=MASK32), min_size=8, max_size=8),
        st.integers(min_value=0, max_value=255),
    )
    def test_adc_widens_consistently(self, a, b, ci_bits):
        """On values that fit 32 bits, MQX adc and KNC adc agree lane-wise."""
        ci8 = Mask(ci_bits, 8)
        mqx_sum, mqx_co = mqx.mm512_adc_epi64(Vec(a), Vec(b), ci8)
        ci16 = Mask.from_bools(
            [ci8.bit(i) for i in range(8)] + [False] * 8
        )
        knc_sum, knc_co = knc.mm512_adc_epi32(
            Vec(a + [0] * 8, width=32), ci16, Vec(b + [0] * 8, width=32)
        )
        for i in range(8):
            wide = a[i] + b[i] + (1 if ci8.bit(i) else 0)
            # The 64-bit op never carries for 32-bit operands...
            assert not mqx_co.bit(i)
            assert mqx_sum.lane(i) == wide
            # ...while the 32-bit ancestor carries exactly at 2^32.
            assert knc_sum.lane(i) == wide & MASK32
            assert knc_co.bit(i) == (wide >> 32 != 0)

    def test_mulhi_lineage(self):
        """MQX's +Mh variant mirrors KNC's vmulhpi at double width."""
        a = Vec([3 << 60] * 8)
        b = Vec([5 << 60] * 8)
        hi = mqx.mm512_mulhi_epi64(a, b)
        assert hi.lane(0) == ((3 << 60) * (5 << 60)) >> 64
