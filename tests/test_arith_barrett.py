"""Tests for Barrett reduction parameters (Section 2.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arith.barrett import BarrettParams
from repro.errors import ArithmeticDomainError

from tests.conftest import BIG_Q, MID_Q, SMALL_Q


class TestParams:
    def test_mu_definition(self):
        params = BarrettParams(97)
        assert params.beta == 7
        assert params.k == 14
        assert params.mu == (1 << 14) // 97

    def test_k_satisfies_paper_constraint(self):
        # 2^(k/2) > q (Section 2.1).
        for q in (SMALL_Q, MID_Q, BIG_Q):
            params = BarrettParams(q)
            assert 1 << (params.k // 2) > q

    def test_rejects_tiny_modulus(self):
        with pytest.raises(ArithmeticDomainError):
            BarrettParams(2)

    def test_check_width_accepts_124_bits(self):
        BarrettParams(BIG_Q).check_width(128)

    def test_check_width_rejects_125_bits(self):
        q = (1 << 125) - 159  # a 125-bit odd number (primality irrelevant)
        with pytest.raises(ArithmeticDomainError, match="124"):
            BarrettParams(q).check_width(128)

    def test_mu_fits_data_width(self):
        params = BarrettParams(BIG_Q)
        params.check_width(128)
        assert params.mu.bit_length() <= 128


class TestReduce:
    @given(st.data())
    @settings(max_examples=300)
    def test_reduce_matches_mod(self, data):
        q = data.draw(st.sampled_from([SMALL_Q, MID_Q, BIG_Q]))
        t = data.draw(st.integers(min_value=0, max_value=q * q - 1))
        assert BarrettParams(q).reduce(t) == t % q

    def test_reduce_boundaries(self):
        params = BarrettParams(MID_Q)
        assert params.reduce(0) == 0
        assert params.reduce(MID_Q * MID_Q - 1) == (MID_Q * MID_Q - 1) % MID_Q
        assert params.reduce(MID_Q) == 0
        assert params.reduce(MID_Q - 1) == MID_Q - 1

    def test_reduce_rejects_out_of_range(self):
        params = BarrettParams(SMALL_Q)
        with pytest.raises(ArithmeticDomainError):
            params.reduce(SMALL_Q * SMALL_Q)
        with pytest.raises(ArithmeticDomainError):
            params.reduce(-1)

    @given(st.integers(min_value=0, max_value=BIG_Q - 1),
           st.integers(min_value=0, max_value=BIG_Q - 1))
    @settings(max_examples=200)
    def test_quotient_estimate_within_two(self, a, b):
        # The classical bound: the estimate is floor(t/q), -1 or -2.
        params = BarrettParams(BIG_Q)
        t = a * b
        estimate = params.quotient_estimate(t)
        true_quotient = t // BIG_Q
        assert 0 <= true_quotient - estimate <= 2
