"""End-to-end observability: hooks, profile harness, CLI subcommand."""

import json

import pytest

from repro.__main__ import main
from repro.arith.primes import default_modulus
from repro.kernels import get_backend
from repro.machine.cpu import get_cpu
from repro.obs import session as obs_session
from repro.obs.export import validate_chrome_trace
from repro.obs.hooks import cache_hit_rates
from repro.obs.profile import (
    available_experiments,
    format_summary,
    profile_experiment,
    snapshot_values,
)
from repro.perf.estimator import estimate_ntt


@pytest.fixture(autouse=True)
def _clean_session():
    obs_session.disable()
    yield
    obs_session.disable()


class TestPipelineHooks:
    """The permanent instrumentation points in isa/machine/perf layers."""

    def test_estimate_populates_all_layers(self):
        q = default_modulus()
        with obs_session.observing() as session:
            estimate_ntt(1 << 12, q, get_backend("mqx"), get_cpu("amd_epyc_9654"))
        metrics = session.metrics
        # ISA layer: per-mnemonic counts + memory traffic.
        assert metrics.counter("isa.instructions").value > 0
        assert metrics.names("isa.ops.")  # at least one mnemonic recorded
        assert metrics.counter("isa.load_bytes").value > 0
        # Scheduler layer: port pressure + critical path.
        assert metrics.counter("sched.blocks").value >= 1
        assert metrics.names("sched.port.")
        assert metrics.histogram("sched.critical_path_cycles").count >= 1
        # Cache layer: level accesses + modeled traffic.
        rates = cache_hit_rates(metrics)
        assert rates and sum(rates.values()) == pytest.approx(1.0)
        assert metrics.counter("cache.bytes_modeled").value > 0
        # Spans: the three estimator phases.
        agg = session.spans.aggregate()
        for phase in ("trace-capture", "schedule", "cache-model"):
            assert agg[phase]["count"] >= 1

    def test_disabled_obs_changes_no_output(self):
        q = default_modulus()
        backend, cpu = get_backend("avx512"), get_cpu("intel_xeon_8352y")
        plain = estimate_ntt(1 << 12, q, backend, cpu)
        with obs_session.observing():
            observed = estimate_ntt(1 << 12, q, backend, cpu)
        again = estimate_ntt(1 << 12, q, backend, cpu)
        assert observed.ns == plain.ns == again.ns
        assert observed.cycles == plain.cycles
        assert observed.memory_level == plain.memory_level

    def test_cache_hit_rates_empty_without_accesses(self):
        with obs_session.observing() as session:
            assert cache_hit_rates(session.metrics) == {}


class TestProfileHarness:
    @pytest.fixture(scope="class")
    def report(self):
        obs_session.disable()
        return profile_experiment("table1")

    def test_known_keys(self):
        keys = available_experiments()
        assert "headline" in keys and "figure5a" in keys and "table1" in keys

    def test_unknown_key_raises(self):
        from repro.errors import ObservabilityError

        with pytest.raises(ObservabilityError):
            profile_experiment("figure99")

    def test_report_shape(self, report):
        assert report.key == "table1"
        assert report.wall_s > 0
        assert report.result.exp_id == "table1"
        assert "experiment:table1" in report.span_aggregate
        assert report.metrics["isa.instructions"]["value"] > 0

    def test_summary_sections(self, report):
        text = format_summary(report)
        assert "== profile: table1" in text
        assert "pipeline phases" in text
        assert "dynamic instruction profile" in text
        assert "port utilization" in text
        assert "critical path" in text

    def test_snapshot_values_lower_is_better(self, report):
        values = snapshot_values(report)
        assert values["profile.table1.wall_s"] == report.wall_s
        assert values["profile.table1.sim_instructions"] > 0
        assert all(v >= 0 for v in values.values())

    def test_session_not_left_enabled(self, report):
        assert obs_session.current() is None


class TestProfileCli:
    def test_profile_runs_and_exports(self, tmp_path, capsys):
        snapshot = tmp_path / "BENCH_pipeline.json"
        code = main(
            [
                "profile",
                "--experiment",
                "table1",
                "--export",
                "chrome+jsonl",
                "--output-dir",
                str(tmp_path),
                "--snapshot",
                str(snapshot),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "== profile: table1" in out
        assert "recorded snapshot" in out
        trace = json.loads((tmp_path / "trace_table1.json").read_text())
        validate_chrome_trace(trace)
        assert (tmp_path / "obs_table1.jsonl").exists()
        assert snapshot.exists()

    def test_second_run_prints_diff(self, tmp_path, capsys):
        snapshot = tmp_path / "BENCH_pipeline.json"
        args = [
            "profile", "--experiment", "table1",
            "--snapshot", str(snapshot),
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "snapshot diff" in out
        assert "regressions" in out

    def test_no_snapshot_flag(self, tmp_path, capsys):
        snapshot = tmp_path / "BENCH_pipeline.json"
        code = main(
            [
                "profile", "--experiment", "table1",
                "--snapshot", str(snapshot), "--no-snapshot",
            ]
        )
        assert code == 0
        assert not snapshot.exists()

    def test_unknown_experiment_lists_keys(self, tmp_path, capsys):
        code = main(
            [
                "profile", "--experiment", "nope",
                "--snapshot", str(tmp_path / "B.json"),
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err
        assert "headline" in err
