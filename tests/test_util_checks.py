"""Unit tests for repro.util.checks and the error hierarchy."""

import pytest

from repro import errors
from repro.util import checks


class TestCheckUint:
    def test_accepts_boundary(self):
        assert checks.check_uint((1 << 64) - 1, 64) == (1 << 64) - 1

    def test_rejects_overflow(self):
        with pytest.raises(errors.ArithmeticDomainError):
            checks.check_uint(1 << 64, 64)

    def test_rejects_negative(self):
        with pytest.raises(errors.ArithmeticDomainError):
            checks.check_uint(-1, 64)

    def test_rejects_non_int(self):
        with pytest.raises(errors.ArithmeticDomainError):
            checks.check_uint(1.5, 64)

    def test_error_mentions_name(self):
        with pytest.raises(errors.ArithmeticDomainError, match="coefficient"):
            checks.check_uint(-1, 64, name="coefficient")


class TestCheckReduced:
    def test_accepts_zero_and_top(self):
        assert checks.check_reduced(0, 17) == 0
        assert checks.check_reduced(16, 17) == 16

    def test_rejects_equal_to_modulus(self):
        with pytest.raises(errors.ArithmeticDomainError):
            checks.check_reduced(17, 17)

    def test_rejects_negative(self):
        with pytest.raises(errors.ArithmeticDomainError):
            checks.check_reduced(-1, 17)


class TestCheckPowerOfTwo:
    @pytest.mark.parametrize("value", [1, 2, 4, 1 << 20])
    def test_accepts_powers(self, value):
        assert checks.check_power_of_two(value) == value

    @pytest.mark.parametrize("value", [0, -4, 3, 6, 12])
    def test_rejects_non_powers(self, value):
        with pytest.raises(errors.NttParameterError):
            checks.check_power_of_two(value)


class TestCheckVectorLength:
    def test_accepts_multiple(self):
        assert checks.check_vector_length(1024, 8) == 1024

    def test_rejects_non_multiple(self):
        with pytest.raises(errors.ArithmeticDomainError):
            checks.check_vector_length(1022, 8)

    def test_rejects_zero(self):
        with pytest.raises(errors.ArithmeticDomainError):
            checks.check_vector_length(0, 8)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "cls",
        [
            errors.IsaError,
            errors.LaneMismatchError,
            errors.MaskWidthError,
            errors.MachineModelError,
            errors.UnknownInstructionError,
            errors.ArithmeticDomainError,
            errors.NttParameterError,
            errors.BackendError,
            errors.ExperimentError,
        ],
    )
    def test_all_derive_from_repro_error(self, cls):
        assert issubclass(cls, errors.ReproError)

    def test_lane_mismatch_is_isa_error(self):
        assert issubclass(errors.LaneMismatchError, errors.IsaError)

    def test_unknown_instruction_is_machine_error(self):
        assert issubclass(errors.UnknownInstructionError, errors.MachineModelError)
