"""Tests for the multi-word (Section 7) generalization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arith.primes import find_ntt_prime
from repro.errors import ArithmeticDomainError, NttParameterError
from repro.kernels import get_backend
from repro.multiword.arith import MwKernel, MwModContext
from repro.multiword.ntt import MultiWordNtt
from repro.multiword.perf import estimate_multiword_ntt
from repro.multiword.wordops import word_ops_for
from repro.ntt.reference import naive_ntt

from tests.conftest import ALL_BACKEND_NAMES, BIG_Q, random_residues

Q256 = find_ntt_prime(252, 1 << 12)
Q192 = find_ntt_prime(188, 1 << 12)


class TestWordOps:
    @pytest.mark.parametrize("name", ALL_BACKEND_NAMES)
    def test_adapter_exists(self, name):
        ops = word_ops_for(get_backend(name))
        assert ops.lanes == get_backend(name).lanes

    def test_mqx_adapter_uses_mqx_instructions(self):
        from repro.isa.trace import tracing

        ops = word_ops_for(get_backend("mqx"))
        a = ops.broadcast(5)
        b = ops.broadcast(7)
        with tracing() as t:
            ops.adc(a, b, ops.zero_cond)
            ops.wide_mul(a, b)
        assert t.count("vpadcq_zmm") == 1
        assert t.count("vpmulwq_zmm") == 1

    def test_avx512_adapter_uses_baseline_instructions(self):
        from repro.isa.trace import tracing

        ops = word_ops_for(get_backend("avx512"))
        a = ops.broadcast(5)
        b = ops.broadcast(7)
        with tracing() as t:
            ops.adc(a, b, ops.zero_cond)
        assert t.count("vpadcq_zmm") == 0
        assert t.count("vpaddq_zmm") >= 1


@pytest.mark.parametrize("q,words", [(Q256, 4), (Q192, 3), (BIG_Q, 2)],
                         ids=["256b", "192b", "128b"])
class TestArithmetic:
    def test_modular_ops(self, backend, q, words, rng):
        ctx = MwModContext(backend, q, words)
        kernel = MwKernel(ctx)
        lanes = ctx.ops.lanes
        for _ in range(6):
            a = random_residues(rng, q, lanes)
            b = random_residues(rng, q, lanes)
            blk_a, blk_b = kernel.load_block(a), kernel.load_block(b)
            assert kernel.block_values(kernel.addmod(blk_a, blk_b)) == [
                (x + y) % q for x, y in zip(a, b)
            ]
            assert kernel.block_values(kernel.submod(blk_a, blk_b)) == [
                (x - y) % q for x, y in zip(a, b)
            ]
            assert kernel.block_values(kernel.mulmod(blk_a, blk_b)) == [
                (x * y) % q for x, y in zip(a, b)
            ]

    def test_butterfly(self, backend, q, words, rng):
        ctx = MwModContext(backend, q, words)
        kernel = MwKernel(ctx)
        lanes = ctx.ops.lanes
        a = random_residues(rng, q, lanes)
        b = random_residues(rng, q, lanes)
        w = rng.randrange(q)
        plus, minus = kernel.butterfly(
            kernel.load_block(a), kernel.load_block(b), kernel.broadcast_residue(w)
        )
        for i in range(lanes):
            t = b[i] * w % q
            assert kernel.block_values(plus)[i] == (a[i] + t) % q
            assert kernel.block_values(minus)[i] == (a[i] - t) % q


class TestArithmeticEdges:
    def test_extreme_residues_256(self, rng):
        q = Q256
        kernel = MwKernel(MwModContext(get_backend("mqx"), q, 4))
        extremes = [0, 1, q - 1, q - 2, (1 << 128) - 1, 1 << 192]
        for x in extremes:
            for y in extremes:
                a = kernel.load_block([x] * 8)
                b = kernel.load_block([y] * 8)
                assert kernel.block_values(kernel.mulmod(a, b))[0] == x * y % q
                assert kernel.block_values(kernel.addmod(a, b))[0] == (x + y) % q

    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_property_scalar_256(self, data):
        q = Q256
        kernel = MwKernel(MwModContext(get_backend("scalar"), q, 4))
        a = data.draw(st.integers(min_value=0, max_value=q - 1))
        b = data.draw(st.integers(min_value=0, max_value=q - 1))
        blk_a, blk_b = kernel.load_block([a]), kernel.load_block([b])
        assert kernel.block_values(kernel.mulmod(blk_a, blk_b)) == [a * b % q]
        assert kernel.block_values(kernel.submod(blk_a, blk_b)) == [(a - b) % q]


class TestValidation:
    def test_modulus_width_bound(self):
        with pytest.raises(ArithmeticDomainError):
            MwModContext(get_backend("scalar"), 1 << 125, 2)  # > 124 bits
        MwModContext(get_backend("scalar"), Q192, 3)  # 188 <= 188

    def test_needs_two_words(self):
        with pytest.raises(ArithmeticDomainError):
            MwModContext(get_backend("scalar"), 97, 1)

    def test_two_words_matches_dw_backend(self, rng):
        """W = 2 must agree with the paper's double-word kernels."""
        q = BIG_Q
        backend = get_backend("avx512")
        kernel = MwKernel(MwModContext(backend, q, 2))
        ctx = backend.make_modulus(q)
        a = random_residues(rng, q, 8)
        b = random_residues(rng, q, 8)
        mw = kernel.block_values(
            kernel.mulmod(kernel.load_block(a), kernel.load_block(b))
        )
        dw = backend.block_values(
            backend.mulmod(backend.load_block(a), backend.load_block(b), ctx)
        )
        assert mw == dw


class TestMultiWordNtt:
    @pytest.mark.parametrize("name", ALL_BACKEND_NAMES)
    def test_256bit_ntt_matches_naive(self, name, rng):
        q = Q256
        plan = MultiWordNtt(16, q, get_backend(name), words=4)
        x = random_residues(rng, q, 16)
        assert plan.forward(x) == naive_ntt(x, q, root=plan.table.root)

    def test_roundtrip(self, rng):
        q = Q256
        plan = MultiWordNtt(32, q, get_backend("mqx"), words=4)
        x = random_residues(rng, q, 32)
        assert plan.inverse(plan.forward(x)) == x

    def test_undersized_rejected(self):
        with pytest.raises(NttParameterError):
            MultiWordNtt(8, Q256, get_backend("avx512"), words=4)

    def test_properties(self):
        plan = MultiWordNtt(32, Q192, get_backend("scalar"), words=3)
        assert plan.n == 32 and plan.q == Q192 and plan.words == 3


class TestMultiWordPerf:
    def test_estimate_runs(self):
        from repro.machine.cpu import get_cpu

        est = estimate_multiword_ntt(
            1 << 12, Q256, get_backend("mqx"), get_cpu("amd_epyc_9654"), 4
        )
        assert est.ns > 0
        assert est.backend == "mqx/256b"

    def test_mqx_gain_grows_with_width(self):
        """The extension experiment's headline: MQX pays off more at 256b."""
        from repro.machine.cpu import get_cpu

        cpu = get_cpu("amd_epyc_9654")

        def gain(q, words):
            avx = estimate_multiword_ntt(1 << 12, q, get_backend("avx512"), cpu, words)
            mqx = estimate_multiword_ntt(1 << 12, q, get_backend("mqx"), cpu, words)
            return avx.ns / mqx.ns

        assert gain(Q256, 4) > gain(BIG_Q, 2)

    def test_wider_residues_cost_more(self):
        from repro.machine.cpu import get_cpu

        cpu = get_cpu("intel_xeon_8352y")
        narrow = estimate_multiword_ntt(1 << 12, BIG_Q, get_backend("mqx"), cpu, 2)
        wide = estimate_multiword_ntt(1 << 12, Q256, get_backend("mqx"), cpu, 4)
        assert wide.ns > 2 * narrow.ns


class TestExtensionExperiment:
    def test_table_shape(self):
        from repro.experiments.extension_multiword import run

        result = run()
        assert [int(b) for b in result.column("bits")] == [128, 192, 256]
        gains = [float(v) for v in result.column("mqx speedup over avx512")]
        assert gains == sorted(gains)  # monotone growth with width
        assert all(g > 2 for g in gains)
