"""Radix-2 and Pease NTTs must equal the definitional transform."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NttParameterError
from repro.ntt.pease import pease_intt, pease_ntt
from repro.ntt.radix2 import intt as radix2_intt
from repro.ntt.radix2 import ntt as radix2_ntt
from repro.ntt.reference import naive_intt, naive_ntt
from repro.ntt.twiddles import TwiddleTable, bit_reverse, bit_reverse_permutation

from tests.conftest import MID_Q, SMALL_Q, random_residues

SIZES = [2, 4, 8, 32, 128]


class TestBitReverse:
    @pytest.mark.parametrize(
        "index,bits,expected", [(0, 3, 0), (1, 3, 4), (6, 3, 3), (5, 4, 10)]
    )
    def test_known_values(self, index, bits, expected):
        assert bit_reverse(index, bits) == expected

    @given(st.integers(min_value=0, max_value=255))
    def test_involution(self, index):
        assert bit_reverse(bit_reverse(index, 8), 8) == index

    def test_permutation_is_involution(self, rng):
        values = random_residues(rng, SMALL_Q, 64)
        twice = bit_reverse_permutation(bit_reverse_permutation(values))
        assert twice == values

    def test_rejects_non_power_of_two(self):
        with pytest.raises(NttParameterError):
            bit_reverse_permutation([1, 2, 3])


class TestTwiddleTable:
    def test_power_table(self):
        table = TwiddleTable(8, SMALL_Q)
        w = table.root
        for e in range(8):
            assert table.power(e) == pow(w, e, SMALL_Q)
        assert table.power(8) == 1  # wraps modulo n

    def test_inverse_powers_are_inverses(self):
        table = TwiddleTable(8, SMALL_Q)
        for e in range(8):
            product = table.power(e) * table.power(e, inverse=True) % SMALL_Q
            assert product == 1

    def test_n_inverse(self):
        table = TwiddleTable(16, SMALL_Q)
        assert table.n_inverse * 16 % SMALL_Q == 1

    def test_rejects_unsupported_modulus(self):
        with pytest.raises(NttParameterError):
            TwiddleTable(8, 23)  # 8 does not divide 22

    def test_rejects_bad_root(self):
        with pytest.raises(NttParameterError):
            TwiddleTable(8, SMALL_Q, root=1)

    def test_stage_out_of_range(self):
        table = TwiddleTable(8, SMALL_Q)
        with pytest.raises(NttParameterError):
            table.pease_stage_twiddles(3)
        with pytest.raises(NttParameterError):
            table.radix2_stage_twiddles(5)

    def test_pease_stage0_is_all_ones(self):
        table = TwiddleTable(16, SMALL_Q)
        assert table.pease_stage_twiddles(0) == [1] * 8


@pytest.mark.parametrize("n", SIZES)
class TestAgainstNaive:
    def test_radix2_matches_naive(self, n, rng):
        q = MID_Q
        x = random_residues(rng, q, n)
        table = TwiddleTable(n, q)
        assert radix2_ntt(x, q, table=table) == naive_ntt(x, q, root=table.root)

    def test_pease_matches_naive(self, n, rng):
        q = MID_Q
        x = random_residues(rng, q, n)
        table = TwiddleTable(n, q)
        assert pease_ntt(x, q, table=table) == naive_ntt(x, q, root=table.root)

    def test_radix2_roundtrip(self, n, rng):
        q = MID_Q
        x = random_residues(rng, q, n)
        assert radix2_intt(radix2_ntt(x, q), q) == x

    def test_pease_roundtrip(self, n, rng):
        q = MID_Q
        x = random_residues(rng, q, n)
        assert pease_intt(pease_ntt(x, q), q) == x

    def test_pease_raw_order_roundtrip(self, n, rng):
        q = MID_Q
        x = random_residues(rng, q, n)
        raw = pease_ntt(x, q, natural_order=False)
        assert pease_intt(raw, q, natural_order=False) == x

    def test_raw_output_is_bit_reversed_natural(self, n, rng):
        q = MID_Q
        x = random_residues(rng, q, n)
        natural = pease_ntt(x, q)
        raw = pease_ntt(x, q, natural_order=False)
        assert bit_reverse_permutation(raw) == natural


class TestDataflowsAgree:
    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_radix2_equals_pease(self, data):
        q = SMALL_Q
        n = data.draw(st.sampled_from([4, 16, 64]))
        x = [data.draw(st.integers(min_value=0, max_value=q - 1)) for _ in range(n)]
        assert radix2_ntt(x, q) == pease_ntt(x, q)

    def test_parseval_like_energy_preservation(self, rng):
        # NTT of a delta at position j is the j-th twiddle row: all lanes
        # nonzero for j > 0 with prime modulus.
        q = SMALL_Q
        n = 16
        delta = [0] * n
        delta[3] = 1
        spectrum = pease_ntt(delta, q)
        assert all(v != 0 for v in spectrum)
