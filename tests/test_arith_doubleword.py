"""Tests for double-word arithmetic (Equations 5-9)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arith import doubleword as dw
from repro.errors import ArithmeticDomainError

MASK64 = (1 << 64) - 1
U128 = st.integers(min_value=0, max_value=(1 << 128) - 1)


class TestConversion:
    @given(U128)
    def test_roundtrip(self, x):
        assert dw.dw_value(dw.dw_from_int(x)) == x

    def test_rejects_129_bits(self):
        with pytest.raises(ArithmeticDomainError):
            dw.dw_from_int(1 << 128)

    def test_invalid_pair_rejected(self):
        with pytest.raises(ArithmeticDomainError):
            dw.dw_add((1 << 64, 0), (0, 0))


class TestAdd:
    @given(U128, U128)
    def test_equation6(self, a, b):
        result, carry = dw.dw_add(dw.dw_from_int(a), dw.dw_from_int(b))
        assert dw.dw_value(result) + (carry << 128) == a + b

    @given(U128, U128, st.integers(min_value=0, max_value=1))
    def test_add_with_carry(self, a, b, ci):
        result, carry = dw.dw_add_with_carry(
            dw.dw_from_int(a), dw.dw_from_int(b), ci
        )
        assert dw.dw_value(result) + (carry << 128) == a + b + ci

    def test_add_carry_edge(self):
        top = (1 << 128) - 1
        result, carry = dw.dw_add(dw.dw_from_int(top), dw.dw_from_int(1))
        assert dw.dw_value(result) == 0
        assert carry == 1

    def test_invalid_carry_rejected(self):
        with pytest.raises(ArithmeticDomainError):
            dw.dw_add_with_carry((0, 0), (0, 0), 2)


class TestSub:
    @given(U128, U128)
    def test_equation7(self, a, b):
        result, borrow = dw.dw_sub(dw.dw_from_int(a), dw.dw_from_int(b))
        assert dw.dw_value(result) - (borrow << 128) == a - b

    def test_borrow_edge(self):
        result, borrow = dw.dw_sub(dw.dw_from_int(0), dw.dw_from_int(1))
        assert dw.dw_value(result) == (1 << 128) - 1
        assert borrow == 1


class TestMul:
    @given(U128, U128)
    @settings(max_examples=300)
    def test_schoolbook_exact(self, a, b):
        hi, lo = dw.dw_mul_schoolbook(dw.dw_from_int(a), dw.dw_from_int(b))
        assert (dw.dw_value(hi) << 128) | dw.dw_value(lo) == a * b

    @given(U128, U128)
    @settings(max_examples=300)
    def test_karatsuba_exact(self, a, b):
        hi, lo = dw.dw_mul_karatsuba(dw.dw_from_int(a), dw.dw_from_int(b))
        assert (dw.dw_value(hi) << 128) | dw.dw_value(lo) == a * b

    @given(U128, U128)
    def test_algorithms_agree(self, a, b):
        pa, pb = dw.dw_from_int(a), dw.dw_from_int(b)
        assert dw.dw_mul_schoolbook(pa, pb) == dw.dw_mul_karatsuba(pa, pb)

    def test_all_ones_edge(self):
        top = dw.dw_from_int((1 << 128) - 1)
        hi, lo = dw.dw_mul_schoolbook(top, top)
        expected = ((1 << 128) - 1) ** 2
        assert (dw.dw_value(hi) << 128) | dw.dw_value(lo) == expected

    def test_karatsuba_65bit_sum_edge(self):
        # Both operand halves near max: (a0 + a1) overflows 64 bits.
        a = dw.dw_from_int((MASK64 << 64) | MASK64)
        b = dw.dw_from_int((MASK64 << 64) | (MASK64 - 1))
        hi, lo = dw.dw_mul_karatsuba(a, b)
        assert (dw.dw_value(hi) << 128) | dw.dw_value(lo) == dw.dw_value(
            a
        ) * dw.dw_value(b)


class TestShift:
    @given(
        st.integers(min_value=0, max_value=(1 << 256) - 1),
        st.integers(min_value=128, max_value=255),
    )
    def test_shift_right_matches_python(self, value, amount):
        words = tuple((value >> (64 * i)) & MASK64 for i in range(4))
        expected = value >> amount
        assert dw.dw_value(dw.dw_shift_right(words, amount)) == expected

    def test_shift_overflow_detected(self):
        words = (0, 0, 0, 1 << 63)
        with pytest.raises(ArithmeticDomainError):
            dw.dw_shift_right(words, 1)

    def test_shift_amount_range(self):
        with pytest.raises(ArithmeticDomainError):
            dw.dw_shift_right((0, 0, 0, 0), 256)
