"""Tests for pseudo-Mersenne (special-prime) reduction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arith.primes import is_prime
from repro.arith.specialprime import (
    EXPONENT,
    SpecialPrimeKernel,
    find_pseudo_mersenne,
    reduce_pseudo_mersenne,
)
from repro.errors import ArithmeticDomainError
from repro.isa.trace import tracing
from repro.kernels import get_backend

from tests.conftest import ALL_BACKEND_NAMES, random_residues

Q, C = find_pseudo_mersenne()


class TestPrimeSearch:
    def test_shape(self):
        assert Q + C == 1 << EXPONENT
        assert is_prime(Q)
        assert Q % (1 << 20) == 1  # NTT-friendly to order 2^20

    def test_cached(self):
        assert find_pseudo_mersenne() == (Q, C)

    def test_other_order(self):
        q, c = find_pseudo_mersenne(1 << 10)
        assert q % (1 << 10) == 1
        assert is_prime(q)

    def test_bad_order_rejected(self):
        with pytest.raises(ArithmeticDomainError):
            find_pseudo_mersenne(100)


class TestReferenceReduction:
    @given(st.integers(min_value=0, max_value=Q * Q - 1))
    @settings(max_examples=300)
    def test_matches_mod(self, x):
        assert reduce_pseudo_mersenne(x, Q, C) == x % Q

    def test_boundaries(self):
        assert reduce_pseudo_mersenne(0, Q, C) == 0
        assert reduce_pseudo_mersenne(Q, Q, C) == 0
        assert reduce_pseudo_mersenne(Q * Q - 1, Q, C) == (Q * Q - 1) % Q

    def test_domain_checked(self):
        with pytest.raises(ArithmeticDomainError):
            reduce_pseudo_mersenne(Q * Q, Q, C)
        with pytest.raises(ArithmeticDomainError):
            reduce_pseudo_mersenne(0, Q + 1, C)


class TestKernel:
    @pytest.mark.parametrize("name", ALL_BACKEND_NAMES)
    def test_mulmod_matches_bigint(self, name, rng):
        kernel = SpecialPrimeKernel(get_backend(name), Q, C)
        lanes = kernel.ops.lanes
        for _ in range(10):
            a = random_residues(rng, Q, lanes)
            b = random_residues(rng, Q, lanes)
            out = kernel.block_values(
                kernel.mulmod(kernel.load_block(a), kernel.load_block(b))
            )
            assert out == [x * y % Q for x, y in zip(a, b)]

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_property_mqx(self, data):
        kernel = SpecialPrimeKernel(get_backend("mqx"), Q, C)
        a = [data.draw(st.integers(min_value=0, max_value=Q - 1)) for _ in range(8)]
        b = [data.draw(st.integers(min_value=0, max_value=Q - 1)) for _ in range(8)]
        out = kernel.block_values(
            kernel.mulmod(kernel.load_block(a), kernel.load_block(b))
        )
        assert out == [x * y % Q for x, y in zip(a, b)]

    def test_cheaper_than_barrett(self, rng):
        for name in ALL_BACKEND_NAMES:
            backend = get_backend(name)
            kernel = SpecialPrimeKernel(backend, Q, C)
            ctx = backend.make_modulus(Q)
            a = kernel.load_block(random_residues(rng, Q, kernel.ops.lanes))
            b = kernel.load_block(random_residues(rng, Q, kernel.ops.lanes))
            with tracing() as special:
                kernel.mulmod(a, b)
            da = backend.load_block(random_residues(rng, Q, backend.lanes))
            db = backend.load_block(random_residues(rng, Q, backend.lanes))
            with tracing() as barrett:
                backend.mulmod(da, db, ctx)
            assert len(special) < len(barrett), name

    def test_rejects_prime_far_from_power_of_two(self):
        from repro.arith.primes import find_ntt_prime

        q = find_ntt_prime(123, 1 << 10)  # c would need ~2^123 bits
        with pytest.raises(ArithmeticDomainError):
            SpecialPrimeKernel(get_backend("scalar"), q, (1 << EXPONENT) - q)

    def test_default_modulus_happens_to_qualify(self):
        """The library default (largest 124-bit NTT prime) is itself close
        enough to 2^124 to use folding - a nice consistency check."""
        from repro.arith.primes import default_modulus

        q = default_modulus()
        c = (1 << EXPONENT) - q
        kernel = SpecialPrimeKernel(get_backend("scalar"), q, c)
        out = kernel.block_values(
            kernel.mulmod(kernel.load_block([q - 1]), kernel.load_block([q - 1]))
        )
        assert out == [(q - 1) * (q - 1) % q]

    def test_rejects_wide_constant(self):
        with pytest.raises(ArithmeticDomainError):
            SpecialPrimeKernel(get_backend("scalar"), (1 << 124) - (1 << 50), 1 << 50)
