"""Tests for the speed-of-light model (Equation 13) and Figure 7."""

import pytest

from repro.arith.primes import default_modulus
from repro.errors import ExperimentError
from repro.kernels import get_backend
from repro.machine.cpu import get_cpu
from repro.perf.estimator import estimate_ntt
from repro.roofline.compare import average_speedup, figure7_comparison
from repro.roofline.sol import default_sol_anchor, sol_runtime, sol_sweep

Q = default_modulus()


class TestEquation13:
    def test_scaling_formula(self):
        est = estimate_ntt(1 << 12, Q, get_backend("mqx"), get_cpu("amd_epyc_9654"))
        target = get_cpu("amd_epyc_9965s")
        sol = sol_runtime(est, target)
        expected = est.ns * (1 / 192) * (3.7 / 3.35)
        assert sol.sol_ns == pytest.approx(expected)
        assert sol.cores == 192

    def test_intel_scaling(self):
        est = estimate_ntt(1 << 12, Q, get_backend("mqx"), get_cpu("intel_xeon_8352y"))
        sol = sol_runtime(est, get_cpu("intel_xeon_6980p"))
        expected = est.ns * (1 / 128) * (3.4 / 3.2)
        assert sol.sol_ns == pytest.approx(expected)

    def test_cross_vendor_rejected(self):
        est = estimate_ntt(1 << 12, Q, get_backend("mqx"), get_cpu("amd_epyc_9654"))
        with pytest.raises(ExperimentError):
            sol_runtime(est, get_cpu("intel_xeon_6980p"))

    def test_sol_always_faster_than_single_core(self):
        sweep = sol_sweep("mqx", "amd_epyc_9654", "amd_epyc_9965s")
        for est in sweep.values():
            assert est.sol_ns < est.measured_ns


class TestAnchor:
    def test_anchor_covers_figure7_sizes(self):
        anchor = default_sol_anchor()
        assert sorted(anchor) == list(range(10, 18))
        assert all(v > 0 for v in anchor.values())

    def test_anchor_is_cached_copy(self):
        a, b = default_sol_anchor(), default_sol_anchor()
        assert a == b
        a[10] = -1.0
        assert default_sol_anchor()[10] != -1.0


class TestFigure7:
    def test_amd_averages_match_paper(self):
        rows = figure7_comparison("amd")
        assert average_speedup(rows, "RPU") == pytest.approx(2.5, abs=0.05)
        assert average_speedup(rows, "FPMM") == pytest.approx(2.9, abs=0.05)
        assert average_speedup(rows, "MoMA") == pytest.approx(1.7, abs=0.05)

    def test_intel_close_to_asics(self):
        """Figure 7a: Intel SOL roughly at RPU/FPMM level, behind MoMA."""
        rows = figure7_comparison("intel")
        rpu = average_speedup(rows, "RPU")
        moma = average_speedup(rows, "MoMA")
        assert 0.8 < rpu < 2.0  # near-ASIC
        assert moma < 1.0  # the GPU stays ahead on Intel (paper: 1.4x)

    def test_openfhe_multicore_orders_of_magnitude_behind(self):
        rows = figure7_comparison("amd")
        assert average_speedup(rows, "OpenFHE (32-core)") > 500

    def test_row_fields(self):
        rows = figure7_comparison("amd")
        row = rows[0]
        assert row.vendor == "amd"
        assert row.speedup == pytest.approx(row.published_ns / row.sol_ns)
