"""Tests for the RNS polynomial substrate."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ArithmeticDomainError, NttParameterError
from repro.kernels import get_backend
from repro.ntt.reference import negacyclic_schoolbook_polymul
from repro.rns.basis import RnsBasis
from repro.rns.poly import RnsPolynomialRing

N = 16
ORDER = 2 * N


@pytest.fixture(scope="module")
def basis():
    return RnsBasis.generate(3, 62, ORDER)


@pytest.fixture(scope="module")
def ring(basis):
    return RnsPolynomialRing(N, basis, get_backend("mqx"))


def _cyclic_ref(f, g, modulus, n):
    out = [0] * n
    for i, a in enumerate(f):
        for j, b in enumerate(g):
            out[(i + j) % n] = (out[(i + j) % n] + a * b) % modulus
    return out


class TestBasis:
    def test_generate_properties(self, basis):
        assert len(basis) == 3
        assert len(set(basis.primes)) == 3
        for q in basis.primes:
            assert q % ORDER == 1

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_crt_roundtrip(self, basis, data):
        x = data.draw(st.integers(min_value=0, max_value=basis.modulus - 1))
        assert basis.from_rns(basis.to_rns(x)) == x

    def test_to_rns_range_checked(self, basis):
        with pytest.raises(ArithmeticDomainError):
            basis.to_rns(basis.modulus)
        with pytest.raises(ArithmeticDomainError):
            basis.to_rns(-1)

    def test_from_rns_validates(self, basis):
        with pytest.raises(ArithmeticDomainError):
            basis.from_rns([0, 0])
        with pytest.raises(ArithmeticDomainError):
            basis.from_rns([basis.primes[0], 0, 0])

    def test_rejects_duplicates_and_composites(self):
        with pytest.raises(ArithmeticDomainError):
            RnsBasis([97, 97])
        with pytest.raises(ArithmeticDomainError):
            RnsBasis([91])
        with pytest.raises(ArithmeticDomainError):
            RnsBasis([])

    def test_generate_validates(self):
        with pytest.raises(ArithmeticDomainError):
            RnsBasis.generate(0, 62, 32)


class TestRingOperations:
    def test_add_sub_roundtrip(self, ring, basis, rng):
        big_q = basis.modulus
        f = ring.encode([rng.randrange(big_q) for _ in range(N)])
        g = ring.encode([rng.randrange(big_q) for _ in range(N)])
        assert ring.sub(ring.add(f, g), g).coefficients() == f.coefficients()

    def test_add_matches_bigint(self, ring, basis, rng):
        big_q = basis.modulus
        fc = [rng.randrange(big_q) for _ in range(N)]
        gc = [rng.randrange(big_q) for _ in range(N)]
        out = ring.add(ring.encode(fc), ring.encode(gc))
        assert out.coefficients() == [(a + b) % big_q for a, b in zip(fc, gc)]

    def test_negacyclic_mul_matches_schoolbook(self, ring, basis, rng):
        big_q = basis.modulus
        fc = [rng.randrange(big_q) for _ in range(N)]
        gc = [rng.randrange(big_q) for _ in range(N)]
        out = ring.mul(ring.encode(fc), ring.encode(gc))
        assert out.coefficients() == negacyclic_schoolbook_polymul(fc, gc, big_q)

    def test_cyclic_ring(self, basis, rng):
        ring = RnsPolynomialRing(N, basis, get_backend("avx512"), negacyclic=False)
        big_q = basis.modulus
        fc = [rng.randrange(big_q) for _ in range(N)]
        gc = [rng.randrange(big_q) for _ in range(N)]
        out = ring.mul(ring.encode(fc), ring.encode(gc))
        assert out.coefficients() == _cyclic_ref(fc, gc, big_q, N)

    def test_one_is_identity(self, ring, basis, rng):
        big_q = basis.modulus
        f = ring.encode([rng.randrange(big_q) for _ in range(N)])
        assert ring.mul(f, ring.one()).coefficients() == f.coefficients()

    def test_zero_annihilates(self, ring, basis, rng):
        big_q = basis.modulus
        f = ring.encode([rng.randrange(big_q) for _ in range(N)])
        assert ring.mul(f, ring.zero()).coefficients() == [0] * N

    def test_scalar_mul(self, ring, basis, rng):
        big_q = basis.modulus
        a = rng.randrange(big_q)
        fc = [rng.randrange(big_q) for _ in range(N)]
        out = ring.scalar_mul(a, ring.encode(fc))
        assert out.coefficients() == [a * c % big_q for c in fc]

    def test_x_to_n_is_minus_one(self, ring, basis):
        """The negacyclic ring law at the RNS level."""
        big_q = basis.modulus
        half = [0] * N
        half[N // 2] = 1
        x_half = ring.encode(half)
        out = ring.mul(x_half, x_half)
        assert out.coefficients() == [big_q - 1] + [0] * (N - 1)

    def test_ntt_count_per_mul(self, ring):
        assert ring.ntt_count_per_mul == 9  # 3 primes x 3 transforms


class TestValidation:
    def test_wrong_dimension_rejected(self, ring):
        with pytest.raises(ArithmeticDomainError):
            ring.encode([0] * (N - 1))

    def test_unreduced_coefficient_rejected(self, ring, basis):
        with pytest.raises(ArithmeticDomainError):
            ring.encode([basis.modulus] + [0] * (N - 1))

    def test_cross_ring_operands_rejected(self, ring, basis):
        other = RnsPolynomialRing(N, basis, get_backend("scalar"))
        f = other.encode([0] * N)
        with pytest.raises(ArithmeticDomainError):
            ring.add(f, f)

    def test_unsupported_prime_rejected(self):
        basis = RnsBasis.generate(1, 62, 16)
        with pytest.raises(NttParameterError):
            RnsPolynomialRing(16, basis, get_backend("scalar"), negacyclic=True)


class TestBackendsAgree:
    def test_all_backends_same_product(self, basis):
        rng = random.Random(77)
        big_q = basis.modulus
        fc = [rng.randrange(big_q) for _ in range(N)]
        gc = [rng.randrange(big_q) for _ in range(N)]
        results = []
        for name in ("scalar", "avx2", "avx512", "mqx"):
            ring = RnsPolynomialRing(N, basis, get_backend(name))
            out = ring.mul(ring.encode(fc), ring.encode(gc))
            results.append(out.coefficients())
        assert all(r == results[0] for r in results)
