"""Tests for the command-line interface."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.__main__ import build_parser, main

_SRC = str(Path(__file__).resolve().parents[1] / "src")


def _run_cli(*argv):
    env = dict(os.environ, PYTHONPATH=_SRC)
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["estimate"])
        assert args.kernel == "ntt"
        assert args.backend == "mqx"
        assert args.logn == 14

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["estimate", "--backend", "sse2"])

    def test_timeline_defaults(self):
        args = build_parser().parse_args(["timeline"])
        assert args.workers == 2
        assert args.logn == 10
        assert args.crash == 0
        assert args.export == "chrome"
        assert args.min_lanes == 0
        assert args.overhead_gate is None

    def test_chaos_export_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.export == "none"
        assert args.output_dir == "."


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "mqx" in out and "amd_epyc_9654" in out

    def test_estimate_ntt(self, capsys):
        assert main(["estimate", "--kernel", "ntt", "--logn", "12"]) == 0
        out = capsys.readouterr().out
        assert "ns/butterfly" in out

    def test_estimate_ntt_baseline(self, capsys):
        assert main(["estimate", "--backend", "openfhe", "--logn", "12"]) == 0
        assert "openfhe" in capsys.readouterr().out

    def test_estimate_blas(self, capsys):
        code = main(
            ["estimate", "--kernel", "blas", "--backend", "avx512",
             "--operation", "axpy"]
        )
        assert code == 0
        assert "ns/element" in capsys.readouterr().out

    def test_validate(self, capsys):
        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "epsilon" in out and "8%" in out

    def test_mca(self, capsys):
        assert main(["mca", "--microarch", "zen4"]) == 0
        assert "Resource pressure" in capsys.readouterr().out

    def test_sol(self, capsys):
        assert main(["sol", "--vendor", "amd"]) == 0
        assert "RPU" in capsys.readouterr().out

    def test_par_demo(self, capsys):
        code = main(
            ["par", "--workers", "2", "--logn", "5", "--batch", "3",
             "--limbs", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "pool: 2 workers" in out
        assert "par.shards.dispatched" in out
        assert "par.fallbacks: 0" in out

    def test_timeline_smoke(self, tmp_path, capsys):
        code = main(
            ["timeline", "--workers", "2", "--logn", "6", "--batch", "4",
             "--limbs", "2", "--rounds", "1", "--export", "chrome",
             "--output-dir", str(tmp_path), "--min-lanes", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "per-worker utilization" in out
        assert "worker lanes:" in out
        trace_path = tmp_path / "trace_timeline.json"
        assert trace_path.exists()

    def test_experiments_writes_file(self, tmp_path, capsys):
        output = tmp_path / "EXP.md"
        assert main(["experiments", "--output", str(output)]) == 0
        assert output.exists()
        text = output.read_text()
        assert "Figure 5a" in text
        # Regeneration runs under repro.obs and appends phase timings.
        assert "## Pipeline phase timings" in text
        assert "experiment:figure5a" in text
        assert "trace-capture" in text


class TestLookupErrorMessages:
    """Unknown names exit nonzero with a one-line message, not a traceback."""

    def test_unknown_blas_operation(self):
        proc = _run_cli(
            "estimate", "--kernel", "blas", "--operation", "bogus"
        )
        assert proc.returncode == 2
        assert "Traceback" not in proc.stderr
        assert len(proc.stderr.strip().splitlines()) == 1
        # The message lists the valid choices.
        assert "vector_mul" in proc.stderr and "axpy" in proc.stderr

    def test_unknown_blas_operation_baseline_backend(self):
        proc = _run_cli(
            "estimate", "--kernel", "blas", "--backend", "gmp",
            "--operation", "bogus",
        )
        assert proc.returncode == 2
        assert "Traceback" not in proc.stderr
        assert "vector_add" in proc.stderr

    def test_unknown_backend_rejected_by_parser(self):
        proc = _run_cli("estimate", "--backend", "nosuch")
        assert proc.returncode == 2
        assert "Traceback" not in proc.stderr
        assert "invalid choice" in proc.stderr

    def test_unknown_cpu_rejected_by_parser(self):
        proc = _run_cli("estimate", "--cpu", "nosuch")
        assert proc.returncode == 2
        assert "Traceback" not in proc.stderr
        assert "invalid choice" in proc.stderr

    def test_sol_unknown_vendor(self, capsys):
        # argparse guards the CLI path; the handler itself must also
        # catch a bad vendor handed to it programmatically.
        import argparse

        from repro.__main__ import _cmd_sol

        assert _cmd_sol(argparse.Namespace(vendor="arm")) == 2
        err = capsys.readouterr().err
        assert "intel" in err and "amd" in err


class TestCodegenCommand:
    def test_writes_artifact_files(self, tmp_path, capsys):
        out = tmp_path / "gen"
        assert main(["codegen", "--output", str(out)]) == 0
        assert (out / "mqx.h").exists()
        assert (out / "butterfly128_mqx.c").exists()
        assert (out / "mulmod128_avx512.c").exists()
        source = (out / "butterfly128_mqx.c").read_text()
        assert '#include "mqx.h"' in source


class TestAttribCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["attrib"])
        assert args.workers == 2
        assert args.logn == 10
        assert args.json == "attrib.json"
        assert args.input is None

    def test_live_batch_ledger_and_json(self, tmp_path, capsys):
        import json

        code = main(
            ["attrib", "--workers", "2", "--logn", "6", "--batch", "4",
             "--limbs", "2", "--rounds", "1",
             "--output-dir", str(tmp_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "worker.compute" in out and "idle" in out
        assert "vs ideal 2.00x bound" in out
        payload = json.loads((tmp_path / "attrib.json").read_text())
        assert payload["format"] == "repro.obs.attrib/v1"
        assert payload["slots"] == 2
        # Acceptance: categories sum to within 5% of measured wall.
        assert abs(payload["ledger_residual"]) <= 0.05

    def test_input_jsonl_path(self, tmp_path, capsys):
        import json

        lines = [
            {"kind": "span", "name": "par.run", "start_s": 0.0,
             "duration_s": 4.0, "depth": 0, "attrs": {}},
            {"kind": "span", "name": "par.worker.shard", "start_s": 1.0,
             "duration_s": 2.0,
             "attrs": {"batch": "b", "shard": 0, "attempt": 1}},
            {"kind": "metric", "name": "par.slot.0.busy_s",
             "type": "counter", "value": 2.0},
            {"kind": "metric", "name": "par.worker.compute_s",
             "type": "histogram", "count": 1, "sum": 1.5},
        ]
        source = tmp_path / "session.jsonl"
        source.write_text("\n".join(json.dumps(l) for l in lines) + "\n")
        code = main(
            ["attrib", "--input", str(source), "--no-json"]
        )
        assert code == 0
        assert "overhead attribution" in capsys.readouterr().out

    def test_unreadable_input_fails_cleanly(self, tmp_path, capsys):
        code = main(["attrib", "--input", str(tmp_path / "absent.jsonl")])
        assert code == 2


class TestServeCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.workers == 2
        assert args.engine == "parallel"
        assert args.logn == 8
        assert args.rate == 200.0
        assert args.max_batch == 32
        assert args.duration is None

    def test_timed_fast_engine_run(self, capsys):
        code = main([
            "serve", "--engine", "fast", "--logn", "5",
            "--rate", "50", "--duration", "0.3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "served" in out and "0 failed" in out


class TestLoadgenCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["loadgen"])
        assert args.engine == "parallel"
        assert args.requests == 192
        assert args.min_gain == 3.0
        assert args.gate_tail == 50.0
        assert args.snapshot is None
        assert args.tenants == 4
        assert args.slo_p99_ms is None


class TestTopCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["top"])
        assert args.url is None
        assert not args.once
        assert args.interval == 1.0
        assert args.engine == "fast"
        assert args.logn == 6
        assert args.requests == 96
        assert args.slo_p99_ms == 250.0

    def test_once_self_driven_smoke(self, capsys):
        code = main(
            ["top", "--once", "--logn", "4", "--requests", "24"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "repro top" in out
        assert "polymul" in out
        assert "coalesce" in out

    def test_live_mode_without_url_fails(self, capsys):
        code = main(["top"])
        assert code == 2
        assert "--url" in capsys.readouterr().out


class TestIncidentsCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["incidents"])
        assert args.dir == "."
        assert not args.fail_empty

    def test_empty_dir_exit_codes(self, tmp_path, capsys):
        assert main(["incidents", "--dir", str(tmp_path)]) == 0
        assert (
            main(["incidents", "--dir", str(tmp_path), "--fail-empty"]) == 1
        )
        assert "none found" in capsys.readouterr().out

    def test_lists_real_dump(self, tmp_path, capsys):
        from repro.obs.flight import FlightRecorder

        rec = FlightRecorder(out_dir=str(tmp_path), post_trigger_s=0.0)
        rec.note("breaker", state="open")
        rec.flush()
        code = main(["incidents", "--dir", str(tmp_path), "--fail-empty"])
        out = capsys.readouterr().out
        assert code == 0
        assert "breaker_open" in out


class TestChaosIncidentDir:
    def test_parser_default(self):
        args = build_parser().parse_args(["chaos"])
        assert args.incident_dir is None


class TestPerfgateCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["perfgate"])
        assert args.files == [
            "BENCH_fast.json", "BENCH_par.json", "BENCH_pipeline.json",
            "BENCH_serve.json",
        ]
        assert args.window == 8
        assert args.mad_k == 4.0
        assert args.min_runs == 2
        assert not args.selftest

    def test_unchanged_rerun_exits_zero(self, tmp_path, capsys):
        from repro.obs.snapshot import SnapshotStore

        store = SnapshotStore(tmp_path / "BENCH_x.json")
        for value in (1.0, 1.01, 0.99, 1.0):
            store.record({"cli.wall_s": value})
        code = main(
            ["perfgate", "--files", str(store.path), "--show-history"]
        )
        assert code == 0
        assert "benchmark trajectory" in capsys.readouterr().out

    def test_injected_regression_exits_nonzero(self, tmp_path, capsys):
        from repro.obs.snapshot import SnapshotStore

        store = SnapshotStore(tmp_path / "BENCH_x.json")
        for value in (1.0, 1.0, 1.0, 2.0):
            store.record({"cli.wall_s": value})
        code = main(["perfgate", "--files", str(store.path)])
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out
