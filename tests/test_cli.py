"""Tests for the command-line interface."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.__main__ import build_parser, main

_SRC = str(Path(__file__).resolve().parents[1] / "src")


def _run_cli(*argv):
    env = dict(os.environ, PYTHONPATH=_SRC)
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["estimate"])
        assert args.kernel == "ntt"
        assert args.backend == "mqx"
        assert args.logn == 14

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["estimate", "--backend", "sse2"])

    def test_timeline_defaults(self):
        args = build_parser().parse_args(["timeline"])
        assert args.workers == 2
        assert args.logn == 10
        assert args.crash == 0
        assert args.export == "chrome"
        assert args.min_lanes == 0
        assert args.overhead_gate is None

    def test_chaos_export_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.export == "none"
        assert args.output_dir == "."


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "mqx" in out and "amd_epyc_9654" in out

    def test_estimate_ntt(self, capsys):
        assert main(["estimate", "--kernel", "ntt", "--logn", "12"]) == 0
        out = capsys.readouterr().out
        assert "ns/butterfly" in out

    def test_estimate_ntt_baseline(self, capsys):
        assert main(["estimate", "--backend", "openfhe", "--logn", "12"]) == 0
        assert "openfhe" in capsys.readouterr().out

    def test_estimate_blas(self, capsys):
        code = main(
            ["estimate", "--kernel", "blas", "--backend", "avx512",
             "--operation", "axpy"]
        )
        assert code == 0
        assert "ns/element" in capsys.readouterr().out

    def test_validate(self, capsys):
        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "epsilon" in out and "8%" in out

    def test_mca(self, capsys):
        assert main(["mca", "--microarch", "zen4"]) == 0
        assert "Resource pressure" in capsys.readouterr().out

    def test_sol(self, capsys):
        assert main(["sol", "--vendor", "amd"]) == 0
        assert "RPU" in capsys.readouterr().out

    def test_par_demo(self, capsys):
        code = main(
            ["par", "--workers", "2", "--logn", "5", "--batch", "3",
             "--limbs", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "pool: 2 workers" in out
        assert "par.shards.dispatched" in out
        assert "par.fallbacks: 0" in out

    def test_timeline_smoke(self, tmp_path, capsys):
        code = main(
            ["timeline", "--workers", "2", "--logn", "6", "--batch", "4",
             "--limbs", "2", "--rounds", "1", "--export", "chrome",
             "--output-dir", str(tmp_path), "--min-lanes", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "per-worker utilization" in out
        assert "worker lanes:" in out
        trace_path = tmp_path / "trace_timeline.json"
        assert trace_path.exists()

    def test_experiments_writes_file(self, tmp_path, capsys):
        output = tmp_path / "EXP.md"
        assert main(["experiments", "--output", str(output)]) == 0
        assert output.exists()
        text = output.read_text()
        assert "Figure 5a" in text
        # Regeneration runs under repro.obs and appends phase timings.
        assert "## Pipeline phase timings" in text
        assert "experiment:figure5a" in text
        assert "trace-capture" in text


class TestLookupErrorMessages:
    """Unknown names exit nonzero with a one-line message, not a traceback."""

    def test_unknown_blas_operation(self):
        proc = _run_cli(
            "estimate", "--kernel", "blas", "--operation", "bogus"
        )
        assert proc.returncode == 2
        assert "Traceback" not in proc.stderr
        assert len(proc.stderr.strip().splitlines()) == 1
        # The message lists the valid choices.
        assert "vector_mul" in proc.stderr and "axpy" in proc.stderr

    def test_unknown_blas_operation_baseline_backend(self):
        proc = _run_cli(
            "estimate", "--kernel", "blas", "--backend", "gmp",
            "--operation", "bogus",
        )
        assert proc.returncode == 2
        assert "Traceback" not in proc.stderr
        assert "vector_add" in proc.stderr

    def test_unknown_backend_rejected_by_parser(self):
        proc = _run_cli("estimate", "--backend", "nosuch")
        assert proc.returncode == 2
        assert "Traceback" not in proc.stderr
        assert "invalid choice" in proc.stderr

    def test_unknown_cpu_rejected_by_parser(self):
        proc = _run_cli("estimate", "--cpu", "nosuch")
        assert proc.returncode == 2
        assert "Traceback" not in proc.stderr
        assert "invalid choice" in proc.stderr

    def test_sol_unknown_vendor(self, capsys):
        # argparse guards the CLI path; the handler itself must also
        # catch a bad vendor handed to it programmatically.
        import argparse

        from repro.__main__ import _cmd_sol

        assert _cmd_sol(argparse.Namespace(vendor="arm")) == 2
        err = capsys.readouterr().err
        assert "intel" in err and "amd" in err


class TestCodegenCommand:
    def test_writes_artifact_files(self, tmp_path, capsys):
        out = tmp_path / "gen"
        assert main(["codegen", "--output", str(out)]) == 0
        assert (out / "mqx.h").exists()
        assert (out / "butterfly128_mqx.c").exists()
        assert (out / "mulmod128_avx512.c").exists()
        source = (out / "butterfly128_mqx.c").read_text()
        assert '#include "mqx.h"' in source
