"""Semantics tests for the MQX extension (Table 2's emulation column)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import IsaError
from repro.isa import mqx as x
from repro.isa.trace import tracing
from repro.isa.types import Mask, Vec

MASK64 = (1 << 64) - 1
LANES = x.LANES

lane_values = st.lists(
    st.integers(min_value=0, max_value=MASK64), min_size=LANES, max_size=LANES
)
mask_bits = st.integers(min_value=0, max_value=(1 << LANES) - 1)


class TestWideningMultiply:
    @given(lane_values, lane_values)
    def test_table2_semantics(self, a, b):
        hi, lo = x.mm512_mul_epi64(Vec(a), Vec(b))
        for i in range(LANES):
            assert hi.lane(i) == (a[i] * b[i]) >> 64
            assert lo.lane(i) == (a[i] * b[i]) & MASK64

    @given(lane_values, lane_values)
    def test_mulhi_matches_wide_high(self, a, b):
        hi, _ = x.mm512_mul_epi64(Vec(a), Vec(b))
        assert x.mm512_mulhi_epi64(Vec(a), Vec(b)) == hi

    def test_single_instruction(self):
        with tracing() as t:
            x.mm512_mul_epi64(Vec([1] * 8), Vec([1] * 8))
        assert [e.op for e in t] == ["vpmulwq_zmm"]

    def test_rejects_ymm(self):
        with pytest.raises(IsaError):
            x.mm512_mul_epi64(Vec([1] * 4), Vec([1] * 4))


class TestAdc:
    @given(lane_values, lane_values, mask_bits)
    def test_table2_semantics(self, a, b, ci_bits):
        ci = Mask(ci_bits, LANES)
        total, co = x.mm512_adc_epi64(Vec(a), Vec(b), ci)
        for i in range(LANES):
            wide = a[i] + b[i] + (1 if ci.bit(i) else 0)
            assert total.lane(i) == wide & MASK64
            assert co.bit(i) == (wide >> 64 != 0)

    def test_carry_edge_max_plus_max_plus_one(self):
        ones = Vec([MASK64] * 8)
        total, co = x.mm512_adc_epi64(ones, ones, Mask.ones(8))
        assert total.to_list() == [MASK64] * 8
        assert co.value == 0xFF

    def test_single_instruction(self):
        with tracing() as t:
            x.mm512_adc_epi64(Vec([1] * 8), Vec([1] * 8), Mask.zeros(8))
        assert [e.op for e in t] == ["vpadcq_zmm"]


class TestSbb:
    @given(lane_values, lane_values, mask_bits)
    def test_table2_semantics(self, a, b, bi_bits):
        bi = Mask(bi_bits, LANES)
        diff, bo = x.mm512_sbb_epi64(Vec(a), Vec(b), bi)
        for i in range(LANES):
            wide = a[i] - b[i] - (1 if bi.bit(i) else 0)
            assert diff.lane(i) == wide & MASK64
            assert bo.bit(i) == (wide < 0)

    def test_borrow_edge_zero_minus_zero_minus_one(self):
        zeros = Vec([0] * 8)
        diff, bo = x.mm512_sbb_epi64(zeros, zeros, Mask.ones(8))
        assert diff.to_list() == [MASK64] * 8
        assert bo.value == 0xFF


class TestPredicated:
    @given(lane_values, lane_values, mask_bits, mask_bits)
    def test_mask_adc_merges_src(self, a, b, k_bits, ci_bits):
        src = Vec([i * 7 for i in range(LANES)])
        k, ci = Mask(k_bits, LANES), Mask(ci_bits, LANES)
        out = x.mm512_mask_adc_epi64(src, k, Vec(a), Vec(b), ci)
        for i in range(LANES):
            if k.bit(i):
                expected = (a[i] + b[i] + (1 if ci.bit(i) else 0)) & MASK64
            else:
                expected = src.lane(i)
            assert out.lane(i) == expected

    @given(lane_values, lane_values, mask_bits, mask_bits)
    def test_mask_sbb_merges_src(self, a, b, k_bits, bi_bits):
        src = Vec([i * 3 for i in range(LANES)])
        k, bi = Mask(k_bits, LANES), Mask(bi_bits, LANES)
        out = x.mm512_mask_sbb_epi64(src, k, Vec(a), Vec(b), bi)
        for i in range(LANES):
            if k.bit(i):
                expected = (a[i] - b[i] - (1 if bi.bit(i) else 0)) & MASK64
            else:
                expected = src.lane(i)
            assert out.lane(i) == expected

    def test_predicated_produces_no_carry_out(self):
        # Per the paper, the predicated forms return only the value.
        out = x.mm512_mask_adc_epi64(
            Vec([0] * 8), Mask.ones(8), Vec([1] * 8), Vec([2] * 8), Mask.zeros(8)
        )
        assert isinstance(out, Vec)


class TestScalarAncestry:
    """MQX mirrors the scalar ADC/SBB/MUL exactly (Section 4.1)."""

    @given(lane_values, lane_values, mask_bits)
    def test_adc_matches_scalar_adc_lanewise(self, a, b, ci_bits):
        from repro.isa import scalar as s

        ci = Mask(ci_bits, LANES)
        total, co = x.mm512_adc_epi64(Vec(a), Vec(b), ci)
        for i in range(LANES):
            st_total, st_carry = s.adc64(a[i], b[i], 1 if ci.bit(i) else 0)
            assert total.lane(i) == int(st_total)
            assert co.bit(i) == bool(int(st_carry))

    @given(lane_values, lane_values)
    def test_mul_matches_scalar_mul_lanewise(self, a, b):
        from repro.isa import scalar as s

        hi, lo = x.mm512_mul_epi64(Vec(a), Vec(b))
        for i in range(LANES):
            st_hi, st_lo = s.mul64(a[i], b[i])
            assert hi.lane(i) == int(st_hi)
            assert lo.lane(i) == int(st_lo)
