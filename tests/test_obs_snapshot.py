"""Perf-snapshot harness: history, regression/improvement/new-key diffs."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs.snapshot import SnapshotStore, diff_values


class TestDiffValues:
    def test_regression_flagged(self):
        diff = diff_values({"a": 1.0}, {"a": 1.5}, threshold=0.10)
        assert diff.regressions == [("a", 1.0, 1.5)]
        assert not diff.ok

    def test_improvement_flagged(self):
        diff = diff_values({"a": 1.0}, {"a": 0.5}, threshold=0.10)
        assert diff.improvements == [("a", 1.0, 0.5)]
        assert diff.ok

    def test_within_threshold_unchanged(self):
        diff = diff_values({"a": 1.0}, {"a": 1.05}, threshold=0.10)
        assert diff.unchanged == 1
        assert not diff.regressions and not diff.improvements

    def test_new_and_removed_keys(self):
        diff = diff_values({"old": 1.0}, {"new": 2.0})
        assert diff.added == ["new"]
        assert diff.removed == ["old"]
        assert diff.ok  # new/removed keys are not regressions

    def test_exact_threshold_boundary_not_flagged(self):
        diff = diff_values({"a": 1.0}, {"a": 1.10}, threshold=0.10)
        assert diff.unchanged == 1

    def test_zero_to_positive_is_a_regression(self):
        # 0 -> positive is an appearing cost: flagged even though no
        # ratio exists against the zero baseline.
        diff = diff_values({"a": 0.0}, {"a": 5.0})
        assert diff.regressions == [("a", 0.0, 5.0)]
        assert not diff.ok

    def test_zero_to_zero_and_negative_baseline_unchanged(self):
        diff = diff_values({"a": 0.0, "b": -1.0}, {"a": 0.0, "b": 5.0})
        assert diff.unchanged == 2
        assert diff.ok

    def test_format_does_not_raise_on_zero_baseline(self):
        # Regression guard: format() used to compute new/old and raise
        # ZeroDivisionError whenever a recorded value was 0.0.
        diff = diff_values({"a": 0.0}, {"a": 5.0})
        text = diff.format()
        assert "REGRESSION  a" in text
        assert "n/a" in text

    def test_negative_threshold_rejected(self):
        with pytest.raises(ObservabilityError):
            diff_values({}, {}, threshold=-0.1)

    def test_format_mentions_all_classes(self):
        diff = diff_values(
            {"worse": 1.0, "better": 1.0, "same": 1.0, "gone": 1.0},
            {"worse": 2.0, "better": 0.5, "same": 1.0, "fresh": 3.0},
        )
        text = diff.format()
        assert "REGRESSION  worse" in text
        assert "improved    better" in text
        assert "new key     fresh" in text
        assert "removed     gone" in text
        assert "1 within threshold" in text


class TestSnapshotStore:
    def test_first_record_has_no_diff(self, tmp_path):
        store = SnapshotStore(tmp_path / "BENCH.json")
        assert store.record({"a": 1.0}, label="first") is None
        assert store.latest()["values"] == {"a": 1.0}
        assert store.latest()["label"] == "first"

    def test_second_record_diffs_against_previous(self, tmp_path):
        store = SnapshotStore(tmp_path / "BENCH.json")
        store.record({"a": 1.0})
        diff = store.record({"a": 2.0, "b": 9.0})
        assert diff.regressions == [("a", 1.0, 2.0)]
        assert diff.added == ["b"]
        assert len(store.load()) == 2

    def test_history_bounded(self, tmp_path):
        store = SnapshotStore(tmp_path / "BENCH.json", keep=3)
        for i in range(6):
            store.record({"a": float(i + 1)})
        history = store.load()
        assert len(history) == 3
        assert history[-1]["values"]["a"] == 6.0

    def test_merge_folds_into_latest(self, tmp_path):
        store = SnapshotStore(tmp_path / "BENCH.json")
        store.record({"a": 1.0})
        store.merge({"bench.figure1.wall_s": 0.25})
        assert store.latest()["values"] == {
            "a": 1.0,
            "bench.figure1.wall_s": 0.25,
        }
        assert len(store.load()) == 1  # merge adds no history entry

    def test_merge_creates_first_snapshot(self, tmp_path):
        store = SnapshotStore(tmp_path / "BENCH.json")
        store.merge({"bench.x.wall_s": 0.5})
        assert store.latest()["values"] == {"bench.x.wall_s": 0.5}

    def test_file_is_valid_json(self, tmp_path):
        path = tmp_path / "BENCH.json"
        SnapshotStore(path).record({"a": 1.0})
        data = json.loads(path.read_text())
        assert data["format"].startswith("repro.obs.snapshot/")
        assert data["snapshots"][0]["values"] == {"a": 1.0}

    def test_missing_file_is_empty_history(self, tmp_path):
        store = SnapshotStore(tmp_path / "missing.json")
        assert store.load() == []
        assert store.latest() is None

    def test_corrupt_file_raises(self, tmp_path):
        path = tmp_path / "BENCH.json"
        path.write_text("not json{")
        with pytest.raises(ObservabilityError):
            SnapshotStore(path).load()

    def test_keep_must_be_positive(self, tmp_path):
        with pytest.raises(ObservabilityError):
            SnapshotStore(tmp_path / "BENCH.json", keep=0)


class TestSnapshotMeta:
    """The namespaced ``_meta`` provenance block (trajectory satellite)."""

    def test_record_stamps_meta_block(self, tmp_path):
        from repro.obs.snapshot import META_KEY

        store = SnapshotStore(tmp_path / "BENCH.json")
        store.record({"a": 1.0}, label="tagged")
        meta = store.latest()[META_KEY]
        assert meta["label"] == "tagged"
        assert meta["timestamp_utc"].endswith("Z")
        assert "T" in meta["timestamp_utc"]
        assert meta["git_sha"]  # "unknown" outside a checkout, never empty
        assert meta["hostname"]

    def test_merge_stamps_meta_on_first_snapshot(self, tmp_path):
        from repro.obs.snapshot import META_KEY

        store = SnapshotStore(tmp_path / "BENCH.json")
        store.merge({"bench.x.wall_s": 0.5})
        assert META_KEY in store.latest()

    def test_values_stay_flat_and_meta_free(self, tmp_path):
        from repro.obs.snapshot import META_KEY

        store = SnapshotStore(tmp_path / "BENCH.json")
        store.record({"a": 1.0, f"{META_KEY}.sneaky": 9.0})
        values = store.latest()["values"]
        assert values == {"a": 1.0}
        assert all(isinstance(v, float) for v in values.values())

    def test_diff_skips_meta_prefixed_keys(self):
        from repro.obs.snapshot import META_KEY

        diff = diff_values(
            {f"{META_KEY}.x": 1.0, "a": 1.0},
            {f"{META_KEY}.x": 99.0, "a": 1.0},
        )
        assert diff.ok
        assert diff.removed == []
        assert diff.unchanged == 1

    def test_existing_readers_unbroken(self, tmp_path):
        # The flat lower-is-better contract: old consumers iterate
        # snapshot["values"] and never see provenance keys.
        path = tmp_path / "BENCH.json"
        SnapshotStore(path).record({"bench.x.wall_s": 0.25})
        data = json.loads(path.read_text())
        snapshot = data["snapshots"][0]
        assert set(snapshot["values"]) == {"bench.x.wall_s"}
        assert {"label", "unix_time", "values"} <= set(snapshot)

    def test_snapshot_meta_helper_fields(self, tmp_path):
        from repro.obs.snapshot import snapshot_meta

        meta = snapshot_meta("lbl", cwd=tmp_path)
        assert set(meta) == {"label", "timestamp_utc", "git_sha", "hostname"}
        assert meta["label"] == "lbl"
