"""Tests for the C code generator."""

import re

import pytest

from repro.arith.primes import default_modulus
from repro.codegen.c_emitter import generate_c_function, generate_kernel_source
from repro.codegen.mqx_header import generate_mqx_header
from repro.errors import ExperimentError
from repro.isa.trace import Tracer
from repro.kernels import get_backend

from tests.conftest import ALL_BACKEND_NAMES

Q = default_modulus()


def _balanced(text: str) -> bool:
    depth_paren = depth_brace = 0
    for ch in text:
        depth_paren += ch == "("
        depth_paren -= ch == ")"
        depth_brace += ch == "{"
        depth_brace -= ch == "}"
        if depth_paren < 0 or depth_brace < 0:
            return False
    return depth_paren == 0 and depth_brace == 0


def _ssa_well_formed(body: str) -> bool:
    """Every variable (v*/k*/t*/f*) is declared before any later use.

    A line may declare several variables (e.g. the MQX carry-out mask and
    the sum: ``__mmask8 k5; __m512i v7 = _mm512_adc_epi64(...)``); all of
    a line's declarations count before its uses are checked.
    """
    declared = set()
    for line in body.splitlines():
        decls = set(
            re.findall(
                r"(?:__m512i|__m256i|__mmask8|uint64_t)\s+([vktfy]\d+)", line
            )
        )
        declared |= decls
        for name in re.findall(r"\b([vktfy]\d+)\b", line):
            if name not in declared:
                return False
    return True


class TestKernelSource:
    @pytest.mark.parametrize("name", ALL_BACKEND_NAMES)
    @pytest.mark.parametrize("kernel", ["addmod", "mulmod", "butterfly"])
    def test_generates_without_unmapped(self, name, kernel):
        source = generate_kernel_source(get_backend(name), kernel, Q)
        assert "unmapped" not in source
        assert _balanced(source)

    def test_avx512_addmod_contains_expected_intrinsics(self):
        source = generate_kernel_source(get_backend("avx512"), "addmod", Q)
        assert "_mm512_add_epi64" in source
        assert "_mm512_cmp_epu64_mask" in source
        assert "_mm512_mask_blend_epi64" in source
        assert "#include <immintrin.h>" in source

    def test_mqx_source_includes_header_and_intrinsics(self):
        source = generate_kernel_source(get_backend("mqx"), "mulmod", Q)
        assert '#include "mqx.h"' in source
        assert "_mm512_mul_epi64(&" in source
        assert "_mm512_adc_epi64(" in source

    def test_scalar_source_uses_int128(self):
        source = generate_kernel_source(get_backend("scalar"), "mulmod", Q)
        assert "unsigned __int128" in source
        assert "uint64_t" in source

    def test_ssa_discipline(self):
        for name in ("avx512", "mqx"):
            source = generate_kernel_source(get_backend(name), "addmod", Q)
            assert _ssa_well_formed(source), name

    def test_cmp_predicates_recovered(self):
        source = generate_kernel_source(get_backend("avx512"), "addmod", Q)
        assert "_MM_CMPINT_LT" in source

    def test_shift_immediates_recovered(self):
        source = generate_kernel_source(get_backend("avx512"), "mulmod", Q)
        assert "_mm512_srli_epi64" in source
        assert re.search(r"_mm512_srli_epi64\([vk]\d+, \d+\)", source)

    def test_loads_and_stores_indexed(self):
        source = generate_kernel_source(get_backend("avx512"), "addmod", Q)
        assert "_mm512_loadu_si512(in + 0)" in source
        assert "_mm512_storeu_si512(out + 0," in source
        assert "_mm512_storeu_si512(out + 1," in source

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ExperimentError):
            generate_kernel_source(get_backend("mqx"), "fft", Q)


class TestCFunction:
    def test_unmapped_raises_by_default(self):
        trace = Tracer()
        trace.emit("vfmadd231pd_zmm", (1,), ())
        with pytest.raises(ExperimentError):
            generate_c_function(trace, "bad")

    def test_unmapped_allowed_as_comment(self):
        trace = Tracer()
        trace.emit("vfmadd231pd_zmm", (1,), ())
        source = generate_c_function(trace, "bad", allow_unmapped=True)
        assert "/* unmapped: vfmadd231pd_zmm */" in source

    def test_signature_type_follows_content(self):
        trace = Tracer()
        trace.emit("add64", (1, 2), ())
        source = generate_c_function(trace, "scalar_fn")
        assert "const uint64_t* in" in source


class TestMqxHeader:
    @pytest.fixture(scope="class")
    def header(self):
        return generate_mqx_header()

    def test_both_build_modes_present(self, header):
        assert "#ifdef MQX_EMULATE" in header
        assert "#else" in header and "#endif" in header

    def test_emulation_mode_is_table2(self, header):
        emulate = header.split("#else")[0]
        assert "unsigned __int128" in emulate
        assert "p >> 64" in emulate

    def test_proxy_mode_is_table3(self, header):
        proxy = header.split("#else")[1]
        assert "_mm512_mullo_epi64" in proxy  # widening -> mullo
        assert "_mm512_mask_add_epi64" in proxy  # adc -> masked add
        assert "volatile" in proxy  # the paper's dependency guard

    def test_all_six_intrinsics_declared(self, header):
        for name in (
            "_mm512_mul_epi64",
            "_mm512_adc_epi64",
            "_mm512_sbb_epi64",
            "_mm512_mulhi_epi64",
            "_mm512_mask_adc_epi64",
            "_mm512_mask_sbb_epi64",
        ):
            assert name in header

    def test_include_guard(self, header):
        assert header.count("#ifndef MQX_H") == 1
        assert _balanced(header.replace("/*", "").replace("*/", ""))
