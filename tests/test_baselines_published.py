"""Tests for the synthesized published-baseline series (Figure 7 inputs)."""

import pytest

from repro.baselines.published import (
    FPMM_SIZES,
    MOMA_SIZES,
    RPU_SIZES,
    get_published,
    synthesize_published,
)
from repro.errors import ExperimentError


@pytest.fixture(scope="module")
def anchor():
    """A synthetic AMD MQX-SOL anchor covering all needed sizes."""
    return {logn: 100.0 * (1 << logn) / 1024 for logn in range(10, 18)}


class TestSynthesis:
    def test_all_four_series_built(self, anchor):
        series = synthesize_published(anchor)
        assert set(series) == {"rpu", "fpmm", "moma", "openfhe_32core"}

    def test_size_coverage(self, anchor):
        series = synthesize_published(anchor)
        assert tuple(series["rpu"].sizes) == RPU_SIZES
        assert tuple(series["fpmm"].sizes) == FPMM_SIZES
        assert tuple(series["moma"].sizes) == MOMA_SIZES

    def test_paper_average_ratios_hold(self, anchor):
        series = synthesize_published(anchor)
        for name, expected in (("rpu", 2.5), ("fpmm", 2.9), ("moma", 1.7)):
            ratios = [
                series[name].runtime(s) / anchor[s] for s in series[name].sizes
            ]
            assert abs(sum(ratios) / len(ratios) - expected) < 0.05, name

    def test_rpu_over_openfhe_range(self, anchor):
        series = synthesize_published(anchor)
        for s in RPU_SIZES:
            ratio = series["openfhe_32core"].runtime(s) / series["rpu"].runtime(s)
            assert 545.0 <= ratio <= 1485.0

    def test_missing_anchor_sizes_rejected(self):
        with pytest.raises(ExperimentError, match="missing"):
            synthesize_published({10: 1.0})

    def test_unknown_size_rejected(self, anchor):
        series = synthesize_published(anchor)
        with pytest.raises(ExperimentError):
            series["fpmm"].runtime(11)


class TestGetPublished:
    def test_with_explicit_anchor(self, anchor):
        rpu = get_published("rpu", anchor)
        assert rpu.kind == "asic"
        assert rpu.runtime(12) > 0

    def test_default_anchor_from_model(self):
        rpu = get_published("rpu")
        moma = get_published("moma")
        # The GPU sits between the CPU SOL and nothing in particular, but
        # both must be positive and RPU slower than our SOL anchor.
        assert rpu.runtime(12) > 0
        assert moma.runtime(12) > 0

    def test_unknown_name_rejected(self):
        with pytest.raises(ExperimentError):
            get_published("tpu")
