"""Figure 2 fidelity: the paper's toy double-word modular addition.

Figure 2 illustrates SIMD double-word modular addition with 4-way vectors
whose elements are 2-bit integers: a double-word is (high, low) 2-bit
halves, i.e. a 4-bit value. The register model supports arbitrary widths,
so the illustration is executable: this test walks the same split-halves /
carry / compare / conditional-subtract strategy at width 2 and checks it
against exact arithmetic for every possible input.
"""

import itertools

from repro.isa.types import Vec

WIDTH = 2
LANES = 4
BASE = 1 << WIDTH  # each half holds values 0..3
MASK = BASE - 1


def _toy_addmod(ah, al, bh, bl, mh, ml):
    """Figure 2's strategy at width 2, lane-wise on 4-way vectors."""
    # low halves add; carry where the sum wrapped.
    t_lo = Vec([(a + b) & MASK for a, b in zip(al.values, bl.values)], width=WIDTH)
    carry = [int(t < a) for t, a in zip(t_lo.values, al.values)]
    # high halves add with carry; unlike the 124-bit production case, a
    # toy modulus is wide enough that the double-word itself can overflow,
    # so the carry-out (Listing 2's c2) must feed the compare.
    raw_hi = [a + b + c for a, b, c in zip(ah.values, bh.values, carry)]
    t_hi = Vec([r & MASK for r in raw_hi], width=WIDTH)
    carry2 = [r >> WIDTH for r in raw_hi]
    # compare (c2, t_hi, t_lo) >= (mh, ml) and conditionally subtract.
    out_h, out_l = [], []
    for c2, th, tl, qh, ql in zip(
        carry2, t_hi.values, t_lo.values, mh.values, ml.values
    ):
        total = (c2 << (2 * WIDTH)) | (th << WIDTH) | tl
        modulus = (qh << WIDTH) | ql
        if total >= modulus:
            total -= modulus
        out_h.append(total >> WIDTH)
        out_l.append(total & MASK)
    return Vec(out_h, width=WIDTH), Vec(out_l, width=WIDTH)


class TestFigure2Toy:
    def test_exhaustive_toy_modular_addition(self):
        """Every (a, b) pair for a toy modulus, four lanes at a time."""
        q = 11  # a 4-bit "double-word" modulus (high=2, low=3)
        mh = Vec([q >> WIDTH] * LANES, width=WIDTH)
        ml = Vec([q & MASK] * LANES, width=WIDTH)
        pairs = list(itertools.product(range(q), repeat=2))
        for chunk_start in range(0, len(pairs), LANES):
            chunk = pairs[chunk_start : chunk_start + LANES]
            while len(chunk) < LANES:
                chunk.append((0, 0))
            a = [p[0] for p in chunk]
            b = [p[1] for p in chunk]
            ah = Vec([x >> WIDTH for x in a], width=WIDTH)
            al = Vec([x & MASK for x in a], width=WIDTH)
            bh = Vec([x >> WIDTH for x in b], width=WIDTH)
            bl = Vec([x & MASK for x in b], width=WIDTH)
            out_h, out_l = _toy_addmod(ah, al, bh, bl, mh, ml)
            for i, (x, y) in enumerate(chunk):
                got = (out_h.lane(i) << WIDTH) | out_l.lane(i)
                assert got == (x + y) % q

    def test_register_model_supports_figure2_widths(self):
        """The Vec register model natively expresses 4x2-bit vectors."""
        v = Vec([3, 2, 1, 0], width=2)
        assert v.lanes == 4
        assert v.width == 2
        assert v.bits == 8
        wrapped = Vec([4, 5, 6, 7], width=2)
        assert wrapped.to_list() == [0, 1, 2, 3]
