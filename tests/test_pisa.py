"""Tests for PISA: proxy maps, trace projection, Table 6 validation."""

import pytest

from repro.isa.trace import TraceEntry, Tracer
from repro.machine.uops import SUNNY_COVE, ZEN4
from repro.pisa.projection import substitute_trace, substitution_count
from repro.pisa.proxy import MQX_PROXY_MAP, VALIDATION_PROXY_MAP
from repro.pisa.validation import (
    VALIDATION_LOG_SIZE,
    max_absolute_error,
    validate_pisa,
)


class TestProxyMaps:
    def test_table3_covers_all_mqx_mnemonics(self):
        expected = {
            "vpmulwq_zmm",
            "vpmulhq_zmm",
            "vpadcq_zmm",
            "vpsbbq_zmm",
            "vpadcq_pred_zmm",
            "vpsbbq_pred_zmm",
        }
        assert set(MQX_PROXY_MAP) == expected

    def test_table3_core_mappings(self):
        assert MQX_PROXY_MAP["vpmulwq_zmm"].proxies == ("vpmullq_zmm",)
        assert MQX_PROXY_MAP["vpadcq_zmm"].proxies == ("vpaddq_masked_zmm",)
        assert MQX_PROXY_MAP["vpsbbq_zmm"].proxies == ("vpsubq_masked_zmm",)

    def test_table5_validation_targets(self):
        assert set(VALIDATION_PROXY_MAP) == {
            "vpmuludq_ymm",
            "vpaddq_masked_zmm",
            "vpsubq_masked_zmm",
        }

    def test_proxies_exist_in_both_uop_tables(self):
        for rules in (MQX_PROXY_MAP, VALIDATION_PROXY_MAP):
            for rule in rules.values():
                for proxy in rule.proxies:
                    assert proxy in SUNNY_COVE.table
                    assert proxy in ZEN4.table


class TestSubstitution:
    def _trace(self):
        t = Tracer("test")
        t.entries.append(TraceEntry("vpaddq_zmm", (1,), ()))
        t.entries.append(TraceEntry("vpaddq_masked_zmm", (2,), (1,)))
        t.entries.append(TraceEntry("vpmuludq_ymm", (3,), (2,)))
        return t

    def test_unmapped_entries_pass_through(self):
        out = substitute_trace(self._trace(), VALIDATION_PROXY_MAP)
        assert out.entries[0].op == "vpaddq_zmm"

    def test_single_proxy_rewrite(self):
        out = substitute_trace(self._trace(), VALIDATION_PROXY_MAP)
        assert out.count("vpmulld_ymm") == 1
        assert out.count("vpmuludq_ymm") == 0

    def test_guard_appended_with_dependency(self):
        out = substitute_trace(self._trace(), VALIDATION_PROXY_MAP)
        ops = [e.op for e in out.entries]
        idx = ops.index("guard")
        guard = out.entries[idx]
        replaced = out.entries[idx - 1]
        assert replaced.op == "vpaddq_zmm"
        assert guard.srcs == replaced.dests

    def test_original_trace_untouched(self):
        trace = self._trace()
        substitute_trace(trace, VALIDATION_PROXY_MAP)
        assert [e.op for e in trace.entries] == [
            "vpaddq_zmm",
            "vpaddq_masked_zmm",
            "vpmuludq_ymm",
        ]

    def test_substitution_count(self):
        assert substitution_count(self._trace(), VALIDATION_PROXY_MAP) == 2


class TestValidation:
    @pytest.fixture(scope="class")
    def cases(self):
        return validate_pisa()

    def test_six_cases_two_cpus(self, cases):
        assert len(cases) == 6
        assert {c.cpu for c in cases} == {"intel_xeon_8352y", "amd_epyc_9654"}

    def test_paper_bound_holds(self, cases):
        """Table 6: |epsilon| below 8% for all six cases."""
        assert max_absolute_error(cases) < 8.0

    def test_conservative_or_exact(self, cases):
        """Our deterministic model never projects an optimistic runtime."""
        for case in cases:
            assert case.relative_error_pct <= 0.0

    def test_validation_uses_paper_size(self):
        assert VALIDATION_LOG_SIZE == 14

    def test_substitutions_actually_happen(self, cases):
        for case in cases:
            assert case.substitutions > 0

    def test_masked_add_most_conservative(self, cases):
        """The guard-per-masked-add case produces the largest error."""
        by_target = {}
        for c in cases:
            by_target.setdefault(c.target_intrinsic, []).append(
                abs(c.relative_error_pct)
            )
        assert max(by_target["_mm512_mask_add_epi64"]) == pytest.approx(
            max_absolute_error(cases)
        )
