"""Tests for the multi-core batch scaling model."""

import pytest

from repro.arith.primes import default_modulus
from repro.errors import ExperimentError
from repro.kernels import get_backend
from repro.machine.cpu import get_cpu
from repro.multicore.model import BatchScalingModel
from repro.perf.estimator import estimate_ntt

Q = default_modulus()
MEASURED = get_cpu("amd_epyc_9654")
TARGET = get_cpu("amd_epyc_9965s")


@pytest.fixture(scope="module")
def est_14():
    return estimate_ntt(1 << 14, Q, get_backend("mqx"), MEASURED)


@pytest.fixture(scope="module")
def est_16():
    return estimate_ntt(1 << 16, Q, get_backend("mqx"), MEASURED)


@pytest.fixture(scope="module")
def model():
    return BatchScalingModel(TARGET)


class TestScaling:
    def test_single_core_near_parity(self, model, est_14):
        mc = model.run(est_14, batch=1, cores=1)
        # Only the clock rescaling separates it from the measurement.
        expected = est_14.ns * MEASURED.measured_ghz / TARGET.allcore_ghz
        assert mc.makespan_ns == pytest.approx(expected)

    def test_compute_bound_scales_linearly(self, model, est_14):
        small = model.run(est_14, batch=32, cores=8)
        big = model.run(est_14, batch=32, cores=32)
        assert big.speedup == pytest.approx(4 * small.speedup, rel=0.01)
        assert small.bound == "compute"

    def test_spilled_size_hits_bandwidth_wall(self, model, est_16):
        full = model.run(est_16, batch=4 * 192, cores=192)
        assert full.bound == "shared-bandwidth"
        assert full.efficiency < 0.5

    def test_l2_resident_size_avoids_wall(self, model, est_14):
        full = model.run(est_14, batch=4 * 192, cores=192)
        assert full.bound == "compute"
        assert full.efficiency > 0.8

    def test_makespan_waves(self, model, est_14):
        one_wave = model.run(est_14, batch=8, cores=8)
        two_waves = model.run(est_14, batch=16, cores=8)
        assert two_waves.makespan_ns == pytest.approx(2 * one_wave.makespan_ns)
        assert two_waves.ns_per_ntt == pytest.approx(one_wave.ns_per_ntt)

    def test_speedup_monotone_in_cores(self, model, est_16):
        curve = model.scaling_curve(est_16, [1, 8, 32, 96, 192])
        speedups = [point.speedup for point in curve]
        assert all(b >= a for a, b in zip(speedups, speedups[1:]))

    def test_batch_smaller_than_cores(self, model, est_14):
        mc = model.run(est_14, batch=4, cores=192)
        # Only 4 transforms in flight; speedup capped by the batch.
        assert mc.speedup <= 4.0


class TestValidation:
    def test_cross_vendor_rejected(self, model):
        intel_est = estimate_ntt(
            1 << 12, Q, get_backend("mqx"), get_cpu("intel_xeon_8352y")
        )
        with pytest.raises(ExperimentError):
            model.run(intel_est, batch=8)

    def test_bad_batch_rejected(self, model, est_14):
        with pytest.raises(ExperimentError):
            model.run(est_14, batch=0)

    def test_core_range_checked(self, model, est_14):
        with pytest.raises(ExperimentError):
            model.run(est_14, batch=8, cores=0)
        with pytest.raises(ExperimentError):
            model.run(est_14, batch=8, cores=TARGET.cores + 1)


class TestExperiment:
    def test_table_and_notes(self):
        from repro.experiments.extension_multicore import run

        result = run()
        bounds = result.column("bound")
        assert "compute" in bounds
        assert "shared-bandwidth" in bounds
        assert any("48x" in note for note in result.notes)

    def test_sol_realizable_for_resident_sizes(self):
        from repro.experiments.extension_multicore import run

        result = run()
        rows14 = [row for row in result.rows if row[0] == 14 and row[1] == 192]
        (row,) = rows14
        assert float(row[2]) > 150  # near-linear on 192 cores
