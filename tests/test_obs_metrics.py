"""Metrics registry: counters, gauges, histogram percentiles."""

import pytest

from repro.errors import ObservabilityError
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_increments(self):
        c = Counter("n")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ObservabilityError):
            Counter("n").inc(-1)

    def test_snapshot(self):
        c = Counter("n")
        c.inc(4)
        assert c.snapshot() == {"type": "counter", "value": 4.0}


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge("g")
        g.set(1.0)
        g.set(7.0)
        assert g.value == 7.0
        assert g.updates == 2


class TestHistogram:
    def test_basic_stats(self):
        h = Histogram("h")
        for v in (4.0, 1.0, 3.0, 2.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == 10.0
        assert h.mean == 2.5

    def test_percentiles_exact(self):
        h = Histogram("h")
        for v in range(1, 101):  # 1..100
            h.observe(float(v))
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 100.0
        assert h.percentile(50) == pytest.approx(50.5)
        assert h.percentile(90) == pytest.approx(90.1)

    def test_percentile_interpolates(self):
        h = Histogram("h")
        h.observe(0.0)
        h.observe(10.0)
        assert h.percentile(50) == pytest.approx(5.0)
        assert h.percentile(25) == pytest.approx(2.5)

    def test_single_value(self):
        h = Histogram("h")
        h.observe(42.0)
        assert h.percentile(0) == h.percentile(50) == h.percentile(100) == 42.0

    def test_empty_histogram_raises(self):
        h = Histogram("h")
        with pytest.raises(ObservabilityError):
            h.mean
        with pytest.raises(ObservabilityError):
            h.percentile(50)

    def test_out_of_range_percentile(self):
        h = Histogram("h")
        h.observe(1.0)
        with pytest.raises(ObservabilityError):
            h.percentile(101)

    def test_snapshot_includes_quantiles(self):
        h = Histogram("h")
        for v in range(10):
            h.observe(float(v))
        snap = h.snapshot()
        assert snap["count"] == 10
        assert snap["min"] == 0.0 and snap["max"] == 9.0
        assert snap["p50"] == pytest.approx(4.5)

    def test_empty_snapshot(self):
        assert Histogram("h").snapshot() == {"type": "histogram", "count": 0}


class TestHistogramReservoir:
    def test_exact_until_cap(self):
        h = Histogram("h", reservoir_size=8)
        for v in range(8):
            h.observe(float(v))
        assert h.values == [float(v) for v in range(8)]
        assert not h.sampled
        assert h.snapshot()["sampled"] is False

    def test_memory_bounded_past_cap(self):
        h = Histogram("h", reservoir_size=16)
        for v in range(10_000):
            h.observe(float(v))
        assert len(h.values) == 16
        assert h.sampled
        assert h.snapshot()["sampled"] is True
        # Running aggregates stay exact regardless of sampling.
        assert h.count == 10_000
        assert h.sum == sum(float(v) for v in range(10_000))
        assert h.min == 0.0 and h.max == 9999.0
        assert h.mean == pytest.approx(4999.5)

    def test_reservoir_values_come_from_observations(self):
        h = Histogram("h", reservoir_size=4)
        observed = {float(v) for v in range(100)}
        for v in sorted(observed):
            h.observe(v)
        assert set(h.values) <= observed

    def test_sampling_is_deterministic_per_name_and_seed(self):
        def fill(name, seed):
            h = Histogram(name, reservoir_size=8, seed=seed)
            for v in range(500):
                h.observe(float(v))
            return h.values

        assert fill("a", 0) == fill("a", 0)
        assert fill("a", 0) != fill("a", 1)
        assert fill("a", 0) != fill("b", 0)

    def test_sampled_percentile_is_representative(self):
        h = Histogram("h", reservoir_size=256)
        for v in range(10_000):
            h.observe(float(v))
        # An unbiased 256-sample estimate of the median of 0..9999
        # lands well inside the central half of the range.
        assert 2500 < h.percentile(50) < 7500

    def test_rejects_nonpositive_cap(self):
        with pytest.raises(ObservabilityError):
            Histogram("h", reservoir_size=0)


class TestRegistry:
    def test_get_or_create(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert len(reg) == 1

    def test_kind_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(ObservabilityError):
            reg.gauge("a")
        with pytest.raises(ObservabilityError):
            reg.histogram("a")

    def test_names_prefix_filter(self):
        reg = MetricsRegistry()
        reg.counter("isa.ops.add64")
        reg.counter("isa.ops.mul64")
        reg.counter("cache.access.L1")
        assert reg.names("isa.ops.") == ["isa.ops.add64", "isa.ops.mul64"]
        assert "cache.access.L1" in reg
        assert reg.get("missing") is None

    def test_snapshot_is_plain_and_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b").inc(2)
        reg.gauge("a").set(1.5)
        reg.histogram("c").observe(3.0)
        snap = reg.snapshot()
        assert list(snap) == ["a", "b", "c"]
        assert snap["a"]["type"] == "gauge"
        assert snap["b"]["value"] == 2.0
        assert snap["c"]["count"] == 1


class TestThreadSafety:
    """Two-thread hammers for the serve-layer's cross-thread metrics.

    The front door writes from two threads at once — the asyncio event
    loop (``serve.queue.depth`` on submit) and the dispatcher thread
    (latency observations on resolve). These tests race exactly that
    pattern and assert no update is lost and no internal state tears.
    """

    THREADS = 2
    ITERATIONS = 5_000

    def _hammer(self, work):
        import threading

        barrier = threading.Barrier(self.THREADS)
        errors = []

        def run(worker):
            barrier.wait()  # maximize overlap
            try:
                for i in range(self.ITERATIONS):
                    work(worker, i)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=run, args=(w,))
            for w in range(self.THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors

    def test_gauge_concurrent_sets_lose_no_updates(self):
        g = Gauge("serve.queue.depth")
        self._hammer(lambda worker, i: g.set(worker * self.ITERATIONS + i))
        assert g.updates == self.THREADS * self.ITERATIONS
        # Last-write-wins: the final value is one some thread wrote.
        final_values = {
            float(w * self.ITERATIONS + self.ITERATIONS - 1)
            for w in range(self.THREADS)
        }
        assert g.value in final_values

    def test_histogram_concurrent_observes_lose_no_counts(self):
        h = Histogram("serve.latency_s", reservoir_size=256)
        self._hammer(lambda worker, i: h.observe(float(i)))
        total = self.THREADS * self.ITERATIONS
        assert h.count == total
        assert h.sum == pytest.approx(
            self.THREADS * sum(range(self.ITERATIONS))
        )
        assert h.min == 0.0
        assert h.max == float(self.ITERATIONS - 1)
        # The reservoir never exceeds its cap and only holds real values.
        assert len(h.values) == 256
        assert all(0.0 <= v <= self.ITERATIONS - 1 for v in h.values)

    def test_registry_concurrent_get_or_create_returns_one_metric(self):
        reg = MetricsRegistry()
        seen = []
        self._hammer(
            lambda worker, i: seen.append(reg.counter("serve.shed"))
        )
        assert len(reg) == 1
        first = seen[0]
        assert all(metric is first for metric in seen)
