"""Tests for the runtime estimators and their paper-shape invariants."""

import pytest

from repro.arith.primes import default_modulus
from repro.errors import ExperimentError
from repro.kernels import get_backend
from repro.machine.cpu import get_cpu
from repro.perf.estimator import (
    estimate_baseline_blas,
    estimate_baseline_ntt,
    estimate_blas,
    estimate_ntt,
    ntt_sweep,
)

Q = default_modulus()
INTEL = get_cpu("intel_xeon_8352y")
AMD = get_cpu("amd_epyc_9654")


class TestNttEstimates:
    def test_runtime_scales_superlinearly_with_n(self):
        be = get_backend("avx512")
        small = estimate_ntt(1 << 10, Q, be, INTEL)
        big = estimate_ntt(1 << 12, Q, be, INTEL)
        # 4x points, 1.2x stages: > 4x total runtime.
        assert big.ns > 4 * small.ns

    def test_ns_per_butterfly_is_consistent(self):
        be = get_backend("mqx")
        est = estimate_ntt(1 << 12, Q, be, AMD)
        butterflies = (1 << 11) * 12
        assert est.ns_per_butterfly == pytest.approx(est.ns / butterflies)

    def test_deterministic(self):
        be = get_backend("avx2")
        a = estimate_ntt(1 << 12, Q, be, INTEL)
        b = estimate_ntt(1 << 12, Q, be, INTEL)
        assert a.ns == b.ns

    def test_undersized_rejected(self):
        with pytest.raises(ExperimentError):
            estimate_ntt(8, Q, get_backend("avx512"), INTEL)

    def test_sweep_covers_paper_sizes(self):
        sweep = ntt_sweep(get_backend("mqx"), AMD, Q)
        assert sorted(sweep) == list(range(10, 18))


class TestPaperShapeInvariants:
    """The orderings and crossovers the reproduction must preserve."""

    @pytest.mark.parametrize("cpu", [INTEL, AMD], ids=["intel", "amd"])
    def test_mqx_fastest_then_avx512(self, cpu):
        results = {
            name: estimate_ntt(1 << 14, Q, get_backend(name), cpu).ns_per_butterfly
            for name in ("scalar", "avx2", "avx512", "mqx")
        }
        assert results["mqx"] < results["avx512"]
        assert results["avx512"] < results["scalar"]
        assert results["avx512"] < results["avx2"]

    @pytest.mark.parametrize("cpu", [INTEL, AMD], ids=["intel", "amd"])
    def test_baselines_far_behind(self, cpu):
        avx512 = estimate_ntt(1 << 14, Q, get_backend("avx512"), cpu)
        openfhe = estimate_baseline_ntt("openfhe", 1 << 14, Q, cpu)
        gmp = estimate_baseline_ntt("gmp", 1 << 14, Q, cpu)
        assert openfhe.ns_per_butterfly > 15 * avx512.ns_per_butterfly
        assert gmp.ns_per_butterfly > openfhe.ns_per_butterfly

    def test_mqx_gain_larger_on_amd(self):
        """Section 5.4: MQX gains 3.7x on AMD vs 2.1x on Intel."""

        def gain(cpu):
            avx512 = estimate_ntt(1 << 14, Q, get_backend("avx512"), cpu).ns
            mqx = estimate_ntt(1 << 14, Q, get_backend("mqx"), cpu).ns
            return avx512 / mqx

        assert gain(AMD) > gain(INTEL)

    def test_mqx_l2_spill_on_intel_at_2_16(self):
        """Section 5.4: MQX degrades at n = 2^16 on Intel (L2 spill)."""
        mqx_15 = estimate_ntt(1 << 15, Q, get_backend("mqx"), INTEL)
        mqx_16 = estimate_ntt(1 << 16, Q, get_backend("mqx"), INTEL)
        assert mqx_15.compute_bound
        assert not mqx_16.compute_bound
        assert mqx_16.ns_per_butterfly > 1.3 * mqx_15.ns_per_butterfly

    def test_avx512_stays_flat_across_sizes(self):
        """Section 5.4: AVX-512 remains compute-bound at every size."""
        sweep = ntt_sweep(get_backend("avx512"), INTEL, Q)
        values = [est.ns_per_butterfly for est in sweep.values()]
        assert max(values) / min(values) < 1.1
        assert all(est.compute_bound for est in sweep.values())

    def test_schoolbook_not_worse_than_karatsuba(self):
        """Section 5.5: schoolbook wins in almost all variants.

        The paper's one exception - near-identical performance for the
        scalar implementation on AMD EPYC - shows up in the model too, so
        that combination is only required to be a near-tie.
        """
        for cpu in (INTEL, AMD):
            for name in ("scalar", "avx2", "avx512", "mqx"):
                be = get_backend(name)
                school = estimate_ntt(1 << 14, Q, be, cpu, "schoolbook")
                karat = estimate_ntt(1 << 14, Q, be, cpu, "karatsuba")
                if cpu is AMD and name == "scalar":
                    # The paper's stated exception: a near-tie.
                    assert school.ns == pytest.approx(karat.ns, rel=0.10)
                else:
                    assert school.ns <= karat.ns * 1.01, (cpu.key, name)


class TestBlasEstimates:
    def test_all_operations_supported(self):
        for op in ("vector_add", "vector_sub", "vector_mul", "axpy"):
            est = estimate_blas(op, 1024, Q, get_backend("avx512"), INTEL)
            assert est.ns_per_element > 0

    def test_unknown_operation_rejected(self):
        with pytest.raises(ExperimentError):
            estimate_blas("gemm", 1024, Q, get_backend("avx512"), INTEL)

    def test_length_must_fill_lanes(self):
        with pytest.raises(ExperimentError):
            estimate_blas("vector_add", 1023, Q, get_backend("avx512"), INTEL)

    def test_mul_costs_more_than_add(self):
        be = get_backend("avx512")
        add = estimate_blas("vector_add", 1024, Q, be, INTEL)
        mul = estimate_blas("vector_mul", 1024, Q, be, INTEL)
        assert mul.ns_per_element > 3 * add.ns_per_element

    def test_axpy_costs_at_least_mul(self):
        be = get_backend("mqx")
        mul = estimate_blas("vector_mul", 1024, Q, be, AMD)
        ax = estimate_blas("axpy", 1024, Q, be, AMD)
        assert ax.ns_per_element >= mul.ns_per_element

    def test_gmp_blas_far_behind(self):
        for cpu in (INTEL, AMD):
            gmp = estimate_baseline_blas("gmp", "vector_mul", 1024, Q, cpu)
            scalar = estimate_blas("vector_mul", 1024, Q, get_backend("scalar"), cpu)
            avx2 = estimate_blas("vector_mul", 1024, Q, get_backend("avx2"), cpu)
            slower = max(scalar.ns_per_element, avx2.ns_per_element)
            assert gmp.ns_per_element > 8 * slower

    def test_unknown_baseline_rejected(self):
        with pytest.raises(ExperimentError):
            estimate_baseline_blas("seal", "vector_add", 1024, Q, INTEL)
        with pytest.raises(ExperimentError):
            estimate_baseline_ntt("helib", 1 << 12, Q, INTEL)
