"""Unit tests for the instruction tracer."""

from repro.isa import scalar as s
from repro.isa.trace import (
    TraceEntry,
    Tracer,
    current_tracer,
    emit,
    op_bytes,
    tracing,
)


class TestTracerBasics:
    def test_no_active_tracer_is_noop(self):
        assert current_tracer() is None
        emit("add64")  # must not raise

    def test_tracing_collects_entries(self):
        with tracing() as t:
            emit("add64", [], [])
            emit("mul64", [], [])
        assert len(t) == 2
        assert [e.op for e in t] == ["add64", "mul64"]

    def test_nested_tracers_innermost_records(self):
        with tracing() as outer:
            with tracing() as inner:
                emit("add64")
            emit("sub64")
        assert [e.op for e in inner] == ["add64"]
        assert [e.op for e in outer] == ["sub64"]

    def test_tracer_popped_on_exception(self):
        try:
            with tracing():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert current_tracer() is None

    def test_emit_resolves_vids(self):
        with tracing() as t:
            a, _ = s.add64(1, 2)
            b, _ = s.add64(a, 3)
        assert t.entries[1].srcs[0] == a.vid
        assert b.vid in t.entries[1].dests


class TestTracerQueries:
    def test_op_counts(self):
        with tracing() as t:
            s.add64(1, 2)
            s.add64(3, 4)
            s.mul64(5, 6)
        counts = t.op_counts()
        assert counts["add64"] == 2
        assert counts["mul64"] == 1
        assert t.count("add64") == 2
        assert t.count("missing") == 0

    def test_memory_ops(self):
        with tracing() as t:
            s.load64(1)
            s.load64(2)
            s.store64(3)
        assert t.memory_ops() == (2, 1)

    def test_extend(self):
        a = Tracer()
        a.emit("add64")
        b = Tracer()
        b.emit("sub64")
        a.extend(b)
        assert [e.op for e in a] == ["add64", "sub64"]

    def test_repr_includes_count(self):
        t = Tracer("kernel")
        t.emit("add64")
        assert "1 instructions" in repr(t)

    def test_entry_is_frozen(self):
        entry = TraceEntry("add64")
        try:
            entry.op = "sub64"
            raised = False
        except Exception:
            raised = True
        assert raised


class TestOpBytes:
    def test_register_class_widths(self):
        assert op_bytes("vmovdqu64_load_zmm") == 64
        assert op_bytes("vmovdqu_load_ymm") == 32
        assert op_bytes("load64") == 8


class TestTracerSummary:
    def test_counts_and_bytes(self):
        t = Tracer("block")
        t.emit("vmovdqu64_load_zmm", tag="load")
        t.emit("vmovdqu64_load_zmm", tag="load")
        t.emit("vpaddq_zmm")
        t.emit("vmovdqu64_store_zmm", tag="store")
        t.emit("load64", tag="load")
        summary = t.summary()
        assert summary["label"] == "block"
        assert summary["entries"] == 5
        assert summary["op_counts"]["vmovdqu64_load_zmm"] == 2
        assert summary["loads"] == 3
        assert summary["stores"] == 1
        assert summary["load_bytes"] == 64 + 64 + 8
        assert summary["store_bytes"] == 64

    def test_empty_tracer(self):
        summary = Tracer().summary()
        assert summary["entries"] == 0
        assert summary["op_counts"] == {}
        assert summary["load_bytes"] == 0

    def test_matches_query_helpers(self):
        with tracing() as t:
            s.load64(1)
            s.add64(2, 3)
            s.store64(4)
        summary = t.summary()
        assert summary["op_counts"] == dict(t.op_counts())
        assert (summary["loads"], summary["stores"]) == t.memory_ops()
