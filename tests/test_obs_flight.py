"""Flight recorder: ring bounds, trigger rules, incident dumps, CLI."""

import json

import pytest

from repro.obs import session as obs_session
from repro.obs.flight import (
    INCIDENT_FORMAT,
    FlightRecorder,
    list_incidents,
    run_incidents,
    summarize_incident,
)
from repro.obs.session import observing
from repro.obs.spans import span


class FakeClock:
    def __init__(self, t=100.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


@pytest.fixture(autouse=True)
def _obs_disabled():
    obs_session.disable()
    yield
    obs_session.disable()


def _recorder(tmp_path, clock, **kwargs):
    defaults = dict(
        out_dir=str(tmp_path),
        clock=clock,
        window_s=1.0,
        shed_spike_count=3,
        deadline_burst_count=2,
        post_trigger_s=0.25,
        cooldown_s=5.0,
    )
    defaults.update(kwargs)
    return FlightRecorder(**defaults)


class TestRing:
    def test_ring_is_bounded_and_seq_survives_eviction(self, tmp_path):
        clock = FakeClock()
        rec = _recorder(tmp_path, clock, capacity=8)
        for i in range(20):
            rec.record_event({"event": "e", "i": i})
        assert len(rec._ring) == 8
        # Monotone sequence numbers keep counting past eviction.
        assert rec._ring[-1][0] == 20
        assert rec._ring[0][0] == 13

    def test_attach_feeds_spans_events_notes(self, tmp_path):
        clock = FakeClock()
        rec = _recorder(tmp_path, clock)
        with observing() as session:
            rec.attach(session)
            assert session.flight is rec
            with span("work"):
                pass
            session.event("shard.dispatched", batch=1)
            rec.note("shed", reason="quota")
            kinds = [kind for _, kind, _ in rec._ring]
            assert kinds == ["span", "event", "note"]
            rec.detach()
            assert session.flight is None
            with span("after-detach"):
                pass
            assert len(rec._ring) == 3


class TestTriggers:
    def test_breaker_open_fires_immediately(self, tmp_path):
        clock = FakeClock()
        rec = _recorder(tmp_path, clock)
        rec.note("breaker", state="open")
        assert rec._pending is not None
        assert rec._pending["rule"] == "breaker_open"

    def test_breaker_other_states_do_not_fire(self, tmp_path):
        clock = FakeClock()
        rec = _recorder(tmp_path, clock)
        rec.note("breaker", state="half_open")
        rec.note("breaker", state="closed")
        assert rec._pending is None

    def test_worker_restart_and_slo_breach_fire(self, tmp_path):
        for kind, rule in (
            ("worker_restart", "worker_restart"),
            ("slo_breach", "slo_burn"),
        ):
            clock = FakeClock()
            rec = _recorder(tmp_path, clock)
            rec.note(kind)
            assert rec._pending is not None
            assert rec._pending["rule"] == rule

    def test_shed_spike_needs_count_within_window(self, tmp_path):
        clock = FakeClock()
        rec = _recorder(tmp_path, clock, shed_spike_count=3)
        rec.note("shed", reason="quota")
        clock.advance(0.1)
        rec.note("shed", reason="quota")
        assert rec._pending is None
        clock.advance(0.1)
        rec.note("shed", reason="quota")
        assert rec._pending is not None
        assert rec._pending["rule"] == "shed_spike"

    def test_slow_sheds_never_spike(self, tmp_path):
        clock = FakeClock()
        rec = _recorder(tmp_path, clock, shed_spike_count=3, window_s=1.0)
        for _ in range(6):
            rec.note("shed", reason="quota")
            clock.advance(0.6)  # 3 sheds always span > window_s
        assert rec._pending is None

    def test_deadline_burst(self, tmp_path):
        clock = FakeClock()
        rec = _recorder(tmp_path, clock, deadline_burst_count=2)
        rec.note("deadline_failure", op="polymul")
        clock.advance(0.05)
        rec.note("deadline_failure", op="polymul")
        assert rec._pending is not None
        assert rec._pending["rule"] == "deadline_burst"

    def test_concurrent_trigger_folds_into_pending(self, tmp_path):
        clock = FakeClock()
        rec = _recorder(tmp_path, clock)
        rec.note("worker_restart")
        clock.advance(0.1)
        rec.note("breaker", state="open")
        assert rec._pending["rule"] == "worker_restart"
        also = rec._pending.get("also")
        assert also and also[0]["rule"] == "breaker_open"
        path = rec.flush()
        dump = json.loads(path.read_text())
        assert dump["trigger"]["rule"] == "worker_restart"
        assert dump["trigger"]["also"][0]["rule"] == "breaker_open"

    def test_cooldown_rate_limits_dumps(self, tmp_path):
        clock = FakeClock()
        rec = _recorder(tmp_path, clock, cooldown_s=5.0)
        rec.note("breaker", state="open")
        assert rec.flush() is not None
        clock.advance(1.0)  # inside the cooldown
        rec.note("breaker", state="open")
        assert rec._pending is None
        assert rec.flush() is None
        clock.advance(5.0)  # past it
        rec.note("breaker", state="open")
        assert rec.flush() is not None
        assert len(rec.incidents) == 2


class TestDump:
    def test_finalizes_after_post_trigger_window(self, tmp_path):
        clock = FakeClock()
        rec = _recorder(tmp_path, clock, post_trigger_s=0.25)
        rec.record_event({"event": "before"})
        rec.note("breaker", state="open")
        clock.advance(0.1)
        rec.record_event({"event": "during"})  # within the window
        assert not rec.incidents
        clock.advance(0.2)  # now past the deadline
        rec.record_event({"event": "after"})
        assert len(rec.incidents) == 1

    def test_incident_schema_and_pre_post_counts(self, tmp_path):
        clock = FakeClock()
        rec = _recorder(tmp_path, clock)
        with observing() as session:
            rec.attach(session)
            with span("lead-up"):
                pass
            rec.note("breaker", state="open")
            clock.advance(0.05)
            with span("aftermath"):
                pass
            path = rec.flush()
        data = json.loads(path.read_text())
        assert data["format"] == INCIDENT_FORMAT
        assert data["trigger"]["rule"] == "breaker_open"
        assert data["captured"]["spans"] == 2
        assert data["captured"]["pre_trigger_spans"] == 1
        assert data["captured"]["post_trigger_spans"] == 1
        assert data["captured"]["notes"] == 1
        # The trace slice is a loadable Chrome trace of the ring's spans.
        names = [
            event["name"]
            for event in data["trace"]["traceEvents"]
            if event.get("ph") == "X"
        ]
        assert "lead-up" in names and "aftermath" in names
        assert [s["name"] for s in data["spans"]] == ["lead-up", "aftermath"]
        assert isinstance(data["metrics"], dict)
        assert data["meta"]["pid"] > 0

    def test_dump_counts_evicted_entries(self, tmp_path):
        clock = FakeClock()
        rec = _recorder(tmp_path, clock, capacity=4)
        for i in range(10):
            rec.record_event({"event": "e", "i": i})
        rec.note("worker_restart")
        data = json.loads(rec.flush().read_text())
        assert data["captured"]["dropped"] == 11 - 4

    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        clock = FakeClock()
        rec = _recorder(tmp_path, clock)
        rec.note("worker_restart")
        rec.flush()
        assert not list(tmp_path.glob("*.tmp"))

    def test_flush_without_pending_returns_none(self, tmp_path):
        rec = _recorder(tmp_path, FakeClock())
        assert rec.flush() is None


class TestIncidentsCli:
    def _dump_one(self, tmp_path):
        clock = FakeClock()
        rec = _recorder(tmp_path, clock)
        with observing() as session:
            rec.attach(session)
            with span("work"):
                pass
            rec.note("breaker", state="open")
            return rec.flush()

    def test_list_and_summarize(self, tmp_path):
        self._dump_one(tmp_path)
        (tmp_path / "incident-notjson.json").write_text("{broken")
        (tmp_path / "incident-other.json").write_text('{"format": "x"}')
        incidents = list_incidents(str(tmp_path))
        assert len(incidents) == 1
        text = summarize_incident(incidents[0])
        assert "breaker_open" in text
        assert "pre-trigger" in text

    def test_run_incidents_exit_codes(self, tmp_path, capsys):
        assert run_incidents(str(tmp_path)) == 0
        assert run_incidents(str(tmp_path), fail_empty=True) == 1
        self._dump_one(tmp_path)
        assert run_incidents(str(tmp_path), fail_empty=True) == 0
        out = capsys.readouterr().out
        assert "breaker_open" in out
