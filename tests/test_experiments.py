"""Integration tests: every experiment regenerates with the paper's shape."""

import pytest

from repro.experiments import (
    figure1,
    figure4,
    figure5,
    figure6,
    figure7,
    headline,
    karatsuba,
    listing4,
    table1,
    table6,
)
from repro.experiments.base import ExperimentResult


def _values(result, column):
    return [float(v) for v in result.column(column)]


class TestFigure1:
    @pytest.fixture(scope="class")
    def result(self):
        return figure1.run()

    def test_nine_series(self, result):
        assert len(result.rows) == 7

    def test_ordering(self, result):
        runtimes = dict(zip(result.column("implementation"), _values(result, "us per NTT")))
        assert runtimes["mqx (1 core EPYC 9654)"] < runtimes["avx512 (1 core EPYC 9654)"]
        assert runtimes["avx512 (1 core EPYC 9654)"] < runtimes["OpenFHE (32-core EPYC 7502)"]
        # The paper's punchline: SOL-scaled MQX approaches (here: beats) RPU.
        assert runtimes["MQX-SOL (192-core EPYC 9965S)"] < runtimes["RPU (ASIC)"]


class TestTable1:
    def test_counts(self):
        result = table1.run()
        counts = dict(zip(result.column("implementation"), result.column("instructions")))
        assert counts["AVX-512"] == 6
        assert counts["MQX"] == 1


class TestTable6:
    def test_all_errors_below_8_percent(self):
        result = table6.run()
        for cell in result.column("epsilon (ours)"):
            assert abs(float(cell.rstrip("%"))) < 8.0


class TestFigure4:
    @pytest.mark.parametrize("panel", ["a", "b"])
    def test_shape(self, panel):
        result = figure4.run(panel)
        assert len(result.rows) == 4  # four BLAS operations
        for row in result.rows:
            values = dict(zip(result.headers[1:], row[1:]))
            assert values["mqx"] <= values["avx512"]
            assert values["avx512"] <= values["avx2"]
            assert values["gmp"] >= values["scalar"]


class TestFigure5:
    @pytest.mark.parametrize("panel", ["a", "b"])
    def test_shape(self, panel):
        result = figure5.run(panel)
        assert [int(v) for v in result.column("log2(n)")] == list(range(10, 18))
        for row in result.rows:
            values = dict(zip(result.headers[1:], row[1:]))
            assert values["mqx"] < values["avx512"] < values["openfhe"]
            assert values["openfhe"] < values["gmp"]

    def test_intel_mqx_degrades_at_2_16(self):
        result = figure5.run("a")
        mqx = dict(zip((int(v) for v in result.column("log2(n)")), _values(result, "mqx")))
        assert mqx[16] > 1.3 * mqx[15]

    def test_avg_speedup_notes_present(self):
        result = figure5.run("b")
        assert any("OpenFHE" in note for note in result.notes)


class TestFigure6:
    @pytest.fixture(scope="class")
    def result(self):
        return figure6.run()

    def test_configs(self, result):
        assert result.column("config") == list(figure6.CONFIGS)

    def test_full_mqx_strongest_core_config(self, result):
        norm = dict(zip(result.column("config"), _values(result, "normalized")))
        assert norm["Base"] == 1.0
        assert norm["+M,C"] < norm["+M"] < 1.0
        assert norm["+M,C"] < norm["+C"] < 1.0
        # Paper: widening multiply contributes more than carry support.
        assert norm["+M"] < norm["+C"]
        # Paper: multiply-high is only a minor degradation.
        assert norm["+Mh,C"] < 1.3 * norm["+M,C"]
        # Paper: predication is a modest ~1.1x.
        assert norm["+M,C,P"] <= norm["+M,C"]
        assert norm["+M,C"] / norm["+M,C,P"] < 1.2

    def test_full_mqx_speedup_magnitude(self, result):
        norm = dict(zip(result.column("config"), _values(result, "normalized")))
        assert 2.5 < 1 / norm["+M,C"] < 4.5  # paper: 3.7x on AMD


class TestKaratsuba:
    def test_schoolbook_wins_almost_everywhere(self):
        """Paper: schoolbook wins in almost all variants; the single
        exception is the scalar implementation on AMD EPYC (a near-tie).
        """
        result = karatsuba.run()
        for cpu, variant, ratio in zip(
            result.column("CPU"),
            result.column("variant"),
            _values(result, "karatsuba/schoolbook"),
        ):
            if cpu == "amd_epyc_9654" and variant == "scalar":
                assert 0.90 <= ratio <= 1.10  # the paper's near-tie
            else:
                assert ratio >= 0.99, (cpu, variant)


class TestFigure7:
    @pytest.mark.parametrize("vendor", ["intel", "amd"])
    def test_rows_cover_designs(self, vendor):
        result = figure7.run(vendor)
        designs = set(result.column("design"))
        assert designs == {"RPU", "FPMM", "MoMA", "OpenFHE (32-core)"}

    def test_notes_quote_paper(self):
        result = figure7.run("amd")
        assert any("2.50x" in note or "2.5" in note for note in result.notes)


class TestListing4:
    def test_mqx_block_much_smaller(self):
        result = listing4.run()
        instr = dict(zip(result.column("variant"), result.column("instructions")))
        assert instr["MQX"] * 2 <= instr["AVX-512"]

    def test_full_report_text(self):
        text = listing4.reports()
        assert "AVX-512 - Resource pressure by instruction:" in text
        assert "MQX - Resource pressure by instruction:" in text
        assert "vpadcq_zmm" in text


class TestHeadline:
    @pytest.fixture(scope="class")
    def result(self):
        return headline.run()

    def test_avx512_order_of_magnitude(self, result):
        values = dict(zip(result.column("metric"), _values(result, "ours")))
        # Paper: 38x NTT / 62x BLAS for AVX-512; we accept the same decade.
        assert values["avx512 NTT vs best baseline"] > 15
        assert values["avx512 BLAS vs GMP"] > 15

    def test_mqx_compounds(self, result):
        values = dict(zip(result.column("metric"), _values(result, "ours")))
        assert (
            values["mqx NTT vs best baseline"]
            > 2 * values["avx512 NTT vs best baseline"]
        )

    def test_asic_gap_narrowed(self, result):
        values = dict(zip(result.column("metric"), _values(result, "ours")))
        gap = values["single-core MQX slowdown vs RPU (best case)"]
        # Paper: as low as 35x on a single core; same decade here.
        assert 10 < gap < 120


class TestResultContainer:
    def test_format_table(self):
        result = ExperimentResult(
            exp_id="t", title="demo", headers=["a", "b"], rows=[[1, 2.5]]
        )
        text = result.format_table()
        assert "demo" in text and "2.500" in text

    def test_format_markdown(self):
        result = ExperimentResult(
            exp_id="t", title="demo", headers=["a"], rows=[["x"]], notes=["note"]
        )
        md = result.format_markdown()
        assert md.startswith("| a |")
        assert "*note*" in md

    def test_column_lookup(self):
        result = ExperimentResult(
            exp_id="t", title="demo", headers=["a", "b"], rows=[[1, 2], [3, 4]]
        )
        assert result.column("b") == [2, 4]
