"""Hypothesis property tests: fast engine == faithful path, any modulus.

Randomized cross-validation over NTT-friendly primes drawn from the full
64-124-bit range the paper's Barrett setup supports, with operand
distributions biased toward the hazardous values: within a few ULPs of
the modulus and of the ``2^64`` limb boundary, where the vectorized
carry/borrow chains must agree exactly with the branch-structured
reference algorithms.
"""

import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

from repro import SimdNtt, get_backend
from repro.arith.doubleword import dw_from_int, dw_value
from repro.arith.dwmod import addmod128, mulmod128, submod128
from repro.arith.primes import find_ntt_prime
from repro.fast.blas import FastBlasPlan
from repro.fast.modular import FastModulus
from repro.fast.ntt import FastNtt
from repro.ntt.reference import naive_intt, naive_ntt

#: Transform order every drawn prime supports (n <= 64 cyclic).
ORDER = 64

#: One NTT-friendly prime per width across the paper's full range.
#: find_ntt_prime is lru_cached, so the draw cost is paid once.
prime_widths = st.integers(min_value=64, max_value=124)


@st.composite
def modulus(draw):
    bits = draw(prime_widths)
    return find_ntt_prime(bits, ORDER)


@st.composite
def modulus_and_operands(draw, count):
    """A prime plus ``count`` reduced operands biased toward edges."""
    q = draw(modulus())
    boundary = sorted(
        {
            v % q
            for v in (
                0, 1, 2, q - 1, q - 2, q - 3,
                (1 << 64) - 2, (1 << 64) - 1, 1 << 64, (1 << 64) + 1,
                (1 << 65) - 1, (1 << 100) - 1,
            )
        }
    )
    operand = st.one_of(
        st.sampled_from(boundary), st.integers(min_value=0, max_value=q - 1)
    )
    return q, [draw(operand) for _ in range(count)]


@settings(max_examples=40, deadline=None)
@given(data=modulus_and_operands(count=8))
def test_modular_ops_match_dwmod(data):
    q, operands = data
    fm = FastModulus(q)
    xs, ys = operands[:4], operands[4:]
    m = dw_from_int(q)
    assert fm.addmod_ints(xs, ys) == [
        dw_value(addmod128(dw_from_int(x), dw_from_int(y), m))
        for x, y in zip(xs, ys)
    ]
    assert fm.submod_ints(xs, ys) == [
        dw_value(submod128(dw_from_int(x), dw_from_int(y), m))
        for x, y in zip(xs, ys)
    ]
    assert fm.mulmod_ints(xs, ys) == [
        dw_value(mulmod128(dw_from_int(x), dw_from_int(y), m))
        for x, y in zip(xs, ys)
    ]


@settings(max_examples=40, deadline=None)
@given(data=modulus_and_operands(count=8))
def test_blas_ops_match_python_semantics(data):
    q, operands = data
    fast = FastBlasPlan(q)
    x, y = operands[:4], operands[4:]
    a = x[0]
    assert fast.vector_add(x, y) == [(u + v) % q for u, v in zip(x, y)]
    assert fast.vector_sub(x, y) == [(u - v) % q for u, v in zip(x, y)]
    assert fast.vector_mul(x, y) == [(u * v) % q for u, v in zip(x, y)]
    assert fast.axpy(a, x, y) == [(a * u + v) % q for u, v in zip(x, y)]


@settings(max_examples=10, deadline=None)
@given(data=modulus_and_operands(count=16))
def test_ntt_roundtrip_matches_scalar_backend_and_reference(data):
    q, values = data
    n = len(values)
    plan = SimdNtt(n, q, get_backend("scalar"))
    fast = FastNtt(n, q, table=plan.table)
    spectrum = fast.forward(values)
    assert spectrum == plan.forward(values)
    assert spectrum == naive_ntt(values, q, root=plan.table.root)
    assert fast.inverse(spectrum) == values
    assert fast.inverse(spectrum) == naive_intt(
        spectrum, q, root=plan.table.root
    )


@settings(max_examples=10, deadline=None)
@given(data=modulus_and_operands(count=16), natural=st.booleans())
def test_inverse_is_left_inverse_in_both_orders(data, natural):
    q, values = data
    n = len(values)
    fast = FastNtt(n, q)
    spectrum = fast.forward(values, natural_order=natural)
    assert fast.inverse(spectrum, natural_order=natural) == values
