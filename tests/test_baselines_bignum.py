"""Tests for the GMP-style mpn substrate (limb arithmetic + Knuth D)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.bignum import (
    GmpContext,
    int_from_limbs,
    limbs_from_int,
    mpn_add_n,
    mpn_lshift,
    mpn_mul,
    mpn_rshift,
    mpn_sub_n,
    mpn_tdiv_qr,
)
from repro.errors import ArithmeticDomainError
from repro.isa.trace import tracing

from tests.conftest import BIG_Q, MID_Q

U256 = st.integers(min_value=0, max_value=(1 << 256) - 1)
U128 = st.integers(min_value=0, max_value=(1 << 128) - 1)


class TestLimbConversion:
    @given(U256)
    def test_roundtrip(self, x):
        assert int_from_limbs(limbs_from_int(x)) == x

    def test_padding(self):
        assert limbs_from_int(1, count=4) == [1, 0, 0, 0]

    def test_zero(self):
        assert limbs_from_int(0) == [0]

    def test_rejects_negative(self):
        with pytest.raises(ArithmeticDomainError):
            limbs_from_int(-5)


class TestMpnAddSub:
    @given(U128, U128)
    def test_add_n(self, a, b):
        out, carry = mpn_add_n(limbs_from_int(a, 2), limbs_from_int(b, 2))
        assert int_from_limbs(out) + (carry << 128) == a + b

    @given(U128, U128)
    def test_sub_n(self, a, b):
        out, borrow = mpn_sub_n(limbs_from_int(a, 2), limbs_from_int(b, 2))
        assert int_from_limbs(out) - (borrow << 128) == a - b

    def test_length_mismatch_rejected(self):
        with pytest.raises(ArithmeticDomainError):
            mpn_add_n([1], [1, 2])
        with pytest.raises(ArithmeticDomainError):
            mpn_sub_n([1], [1, 2])


class TestMpnMul:
    @given(U128, U128)
    @settings(max_examples=150)
    def test_exact_product(self, a, b):
        out = mpn_mul(limbs_from_int(a, 2), limbs_from_int(b, 2))
        assert int_from_limbs(out) == a * b

    @given(U256, st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_asymmetric_product(self, a, b):
        out = mpn_mul(limbs_from_int(a, 4), limbs_from_int(b, 1))
        assert int_from_limbs(out) == a * b

    def test_all_ones_edge(self):
        top = (1 << 128) - 1
        out = mpn_mul(limbs_from_int(top, 2), limbs_from_int(top, 2))
        assert int_from_limbs(out) == top * top


class TestMpnShift:
    @given(U128, st.integers(min_value=0, max_value=63))
    def test_lshift(self, a, amount):
        out = mpn_lshift(limbs_from_int(a, 2), amount)
        assert int_from_limbs(out) == a << amount

    @given(U128, st.integers(min_value=0, max_value=63))
    def test_rshift(self, a, amount):
        out = mpn_rshift(limbs_from_int(a, 2), amount)
        assert int_from_limbs(out) == a >> amount

    def test_range_checked(self):
        with pytest.raises(ArithmeticDomainError):
            mpn_lshift([0], 64)


class TestKnuthDivision:
    @given(U256, st.integers(min_value=1, max_value=(1 << 128) - 1))
    @settings(max_examples=200, deadline=None)
    def test_tdiv_qr_exact(self, num, den):
        q, r = mpn_tdiv_qr(limbs_from_int(num, 4), limbs_from_int(den))
        assert int_from_limbs(q) == num // den
        assert int_from_limbs(r) == num % den

    def test_single_limb_divisor(self):
        q, r = mpn_tdiv_qr(limbs_from_int(12345678901234567890123, 3), [97])
        assert int_from_limbs(q) == 12345678901234567890123 // 97
        assert int_from_limbs(r) == 12345678901234567890123 % 97

    def test_divide_by_zero_rejected(self):
        with pytest.raises(ArithmeticDomainError):
            mpn_tdiv_qr([1, 2], [0])

    def test_numerator_smaller_than_divisor(self):
        q, r = mpn_tdiv_qr([5, 0], [0, 1])
        assert int_from_limbs(q) == 0
        assert int_from_limbs(r) == 5

    def test_qhat_correction_path(self):
        # Divisor with max top limb forces the q_hat = LIMB_MASK branch.
        num = ((1 << 64) - 1) << 100
        den = ((1 << 64) - 1) << 32
        q, r = mpn_tdiv_qr(limbs_from_int(num, 3), limbs_from_int(den, 2))
        assert int_from_limbs(q) == num // den
        assert int_from_limbs(r) == num % den


class TestGmpContext:
    @given(st.data())
    @settings(max_examples=80, deadline=None)
    def test_modular_ops(self, data):
        q = data.draw(st.sampled_from([MID_Q, BIG_Q]))
        ctx = GmpContext(q)
        a = data.draw(st.integers(min_value=0, max_value=q - 1))
        b = data.draw(st.integers(min_value=0, max_value=q - 1))
        assert ctx.addmod(a, b) == (a + b) % q
        assert ctx.submod(a, b) == (a - b) % q
        assert ctx.mulmod(a, b) == (a * b) % q

    def test_butterfly(self):
        q = BIG_Q
        ctx = GmpContext(q)
        hi, lo = ctx.butterfly(5, 7, 11)
        assert hi == (5 + 7 * 11) % q
        assert lo == (5 - 7 * 11) % q

    def test_cost_structure_in_trace(self):
        ctx = GmpContext(BIG_Q)
        with tracing() as t:
            ctx.mulmod(BIG_Q - 1, BIG_Q - 2)
        counts = t.op_counts()
        assert counts["call"] >= 2          # mpz_mul + mpz_mod entries
        assert counts["alloc"] >= 2         # heap temporaries
        assert counts["div64"] >= 1         # division-based reduction
        assert counts["mul64"] >= 4         # 2x2 limb product

    def test_rejects_tiny_modulus(self):
        with pytest.raises(ArithmeticDomainError):
            GmpContext(2)
