"""``repro top``: panel building, rendering, and scrape-path parity."""

import math

import pytest

from repro.obs import session as obs_session
from repro.obs.metrics import MetricsRegistry
from repro.obs.openmetrics import render_openmetrics
from repro.obs.top import (
    _bucket_percentile,
    _missing_panels,
    build_panels,
    canonicalize_snapshot,
    parse_openmetrics_text,
    render_panels,
    run_top,
)


@pytest.fixture(autouse=True)
def _obs_disabled():
    obs_session.disable()
    yield
    obs_session.disable()


def _serving_registry() -> MetricsRegistry:
    """A registry shaped like a short serve burst over two ops."""
    registry = MetricsRegistry()
    registry.counter("serve.requests.admitted").inc(100)
    registry.counter("serve.requests.completed").inc(90)
    registry.counter("serve.requests.failed").inc(2)
    registry.counter("serve.shed").inc(8)
    registry.counter("serve.degraded").inc(1)
    registry.counter("serve.batches").inc(10)
    registry.gauge("serve.queue.depth").set(3)
    for latency in (0.010, 0.011, 0.012, 0.200):
        registry.histogram("serve.latency_s.polymul").observe(latency)
    registry.histogram("serve.latency_s.ntt").observe(0.005)
    registry.gauge("serve.slo.target_ms.polymul").set(50.0)
    registry.gauge("serve.slo.burn_rate.polymul").set(2.5)
    registry.gauge("serve.slo.breach_windows.polymul").set(2)
    registry.counter("serve.slo.violations.polymul").inc(4)
    for size in (8, 16):
        registry.histogram("serve.coalesce.batch_size").observe(size)
    registry.histogram("serve.batch.wait_s").observe(0.001)
    registry.gauge("resil.breaker.state_code").set(2.0)
    registry.counter("resil.breaker.open").inc(1)
    registry.counter("par.slot.0.busy_s").inc(1.5)
    registry.counter("par.slot.0.shards").inc(6)
    registry.counter("par.arena.leases").inc(10)
    registry.counter("par.arena.reuses").inc(7)
    registry.counter("par.arena.creates").inc(3)
    return registry


class TestBucketPercentile:
    def test_interpolates_within_crossing_bucket(self):
        buckets = [(1.0, 50.0), (2.0, 100.0)]
        # p50 rank = 50 -> exactly the first bucket's upper bound.
        assert _bucket_percentile(buckets, 50.0) == pytest.approx(1.0)
        # p75 rank = 75 -> halfway through the (1, 2] bucket.
        assert _bucket_percentile(buckets, 75.0) == pytest.approx(1.5)

    def test_inf_bucket_degrades_to_predecessor_bound(self):
        buckets = [(1.0, 10.0), (math.inf, 100.0)]
        assert _bucket_percentile(buckets, 99.0) == 1.0

    def test_empty_and_zero_total(self):
        assert _bucket_percentile([], 99.0) == 0.0
        assert _bucket_percentile([(1.0, 0.0), (math.inf, 0.0)], 99.0) == 0.0


class TestPanels:
    def test_build_panels_from_live_snapshot(self):
        canon = canonicalize_snapshot(_serving_registry().snapshot())
        panels = build_panels(canon)

        requests = panels["requests"]
        assert requests["admitted"] == 100
        assert requests["shed_rate"] == pytest.approx(8 / 108)
        assert requests["backlog"] == 3
        assert requests["rps"] is None  # no prev frame in --once mode

        assert set(panels["ops"]) == {"polymul", "ntt"}
        polymul = panels["ops"]["polymul"]
        assert polymul["count"] == 4
        assert polymul["slo_ms"] == 50.0
        assert polymul["p99_ms"] > polymul["p50_ms"]
        assert polymul["burn_rate"] == pytest.approx(2.5)
        assert polymul["breach_windows"] == 2
        assert panels["ops"]["ntt"]["slo_ms"] is None  # no target set

        assert panels["coalesce"]["batches"] == 10
        assert panels["coalesce"]["fill_mean"] == pytest.approx(12.0)
        assert panels["breaker"]["state"] == "open"
        assert panels["breaker"]["transitions"] == {"open": 1}
        assert panels["slots"]["0"]["busy_s"] == pytest.approx(1.5)
        assert panels["arena"]["hit_rate"] == pytest.approx(0.7)

    def test_rates_from_counter_deltas(self):
        registry = _serving_registry()
        prev = canonicalize_snapshot(registry.snapshot())
        registry.counter("serve.requests.completed").inc(30)
        registry.counter("par.slot.0.busy_s").inc(1.0)
        canon = canonicalize_snapshot(registry.snapshot())
        panels = build_panels(canon, prev=prev, interval_s=2.0)
        assert panels["requests"]["rps"] == pytest.approx(15.0)
        assert panels["slots"]["0"]["util"] == pytest.approx(0.5)

    def test_render_mentions_every_panel(self):
        canon = canonicalize_snapshot(_serving_registry().snapshot())
        text = render_panels(build_panels(canon), source="test")
        assert "source: test" in text
        assert "admitted 100" in text
        assert "polymul" in text and "ntt" in text
        assert "fill 12.0 req/batch" in text
        assert "breaker   open" in text
        assert "slots     0:" in text
        assert "70% hit" in text
        # The over-SLO op is flagged.
        polymul_row = next(
            line for line in text.splitlines() if line.startswith("polymul")
        )
        assert polymul_row.endswith("!")

    def test_render_empty_registry_uses_placeholders(self):
        panels = build_panels(canonicalize_snapshot({}))
        text = render_panels(panels)
        assert "(no completed requests yet)" in text
        assert "breaker   n/a" in text
        assert "(no parallel-engine telemetry)" in text
        assert "(no shm arena activity)" in text

    def test_missing_panels_gate(self):
        empty = build_panels(canonicalize_snapshot({}))
        assert _missing_panels(empty, None) == [
            "requests", "ops", "coalesce"
        ]
        full = build_panels(
            canonicalize_snapshot(_serving_registry().snapshot())
        )
        assert _missing_panels(full, None) == []
        assert _missing_panels(full, "parallel") == []
        no_pool = _serving_registry()
        no_pool._metrics.pop("par.arena.leases")
        gated = build_panels(canonicalize_snapshot(no_pool.snapshot()))
        gated["slots"] = {}
        assert _missing_panels(gated, "parallel") == ["slots", "arena"]


class TestScrapeParity:
    def test_exposition_round_trip_matches_live_panels(self):
        registry = _serving_registry()
        live = build_panels(canonicalize_snapshot(registry.snapshot()))
        scraped = build_panels(
            parse_openmetrics_text(render_openmetrics(registry))
        )

        assert scraped["requests"] == live["requests"]
        assert scraped["coalesce"]["batches"] == live["coalesce"]["batches"]
        assert scraped["breaker"] == live["breaker"]
        assert scraped["arena"] == live["arena"]
        assert set(scraped["ops"]) == set(live["ops"])
        for op in live["ops"]:
            for field in ("count", "slo_ms", "burn_rate", "violations"):
                assert scraped["ops"][op][field] == live["ops"][op][field]
            # Bucket-estimated percentiles are quantized to the bucket
            # grid; assert the right order of magnitude, not equality.
            live_p99 = live["ops"][op]["p99_ms"]
            scraped_p99 = scraped["ops"][op]["p99_ms"]
            assert live_p99 / 10 <= scraped_p99 <= live_p99 * 10


class TestRunTop:
    def test_once_self_driven_renders_and_passes(self):
        lines = []
        code = run_top(
            once=True, engine="fast", logn=4, requests=24,
            emit=lines.append,
        )
        assert code == 0
        text = "\n".join(lines)
        assert "self-driven fast burst" in text
        assert "polymul" in text
        assert "admitted 24" in text

    def test_once_against_openmetrics_endpoint(self):
        from repro.obs.openmetrics import OpenMetricsExporter

        registry = _serving_registry()
        exporter = OpenMetricsExporter(source=lambda: registry, port=0)
        exporter.start()
        try:
            lines = []
            code = run_top(
                url=f"http://127.0.0.1:{exporter.port}/metrics",
                once=True,
                emit=lines.append,
            )
        finally:
            exporter.stop()
        assert code == 0
        text = "\n".join(lines)
        assert "admitted 100" in text
        assert "breaker   open" in text

    def test_once_scrape_failure_exits_2(self):
        lines = []
        code = run_top(
            url="http://127.0.0.1:1/metrics", once=True, emit=lines.append
        )
        assert code == 2
        assert any("scrape" in line for line in lines)

    def test_live_mode_requires_url(self):
        lines = []
        assert run_top(once=False, url=None, emit=lines.append) == 2
        assert any("--url" in line for line in lines)
