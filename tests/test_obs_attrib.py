"""Overhead attribution: ledger accounting on synthetic merged sessions."""

import pytest

from repro.errors import ObservabilityError
from repro.obs.attrib import (
    LEDGER_CATEGORIES,
    Attribution,
    attribute,
    attribute_jsonl,
    attribute_session,
    attribution_to_json,
    format_attribution,
)
from repro.obs.dist import BLOB_VERSION, make_context, merge_blob
from repro.obs.session import ObsSession


def _blob(slot, shard, wall_s, compute, shm, plan, checksum=0.0, attempt=1):
    """A fabricated worker telemetry blob with known phase durations."""
    cursor = 0.0
    spans = [("par.worker.shard", 0.0, wall_s, {})]
    for name, duration in (
        ("par.worker.map_shm", shm),
        ("par.worker.plan", plan),
        ("par.worker.compute", compute),
        ("par.worker.checksum", checksum),
    ):
        if duration > 0:
            spans.append((name, cursor, duration, {}))
            cursor += duration
    return {
        "v": BLOB_VERSION,
        "ctx": make_context("batch-test-0", shard, attempt=attempt),
        "pid": 4000 + slot,
        "mono0": 0.0,
        "wall_s": wall_s,
        "ok": True,
        "spans": spans,
        "counters": {},
    }


def _merged_session():
    """Parent session with two merged worker shards on distinct slots.

    Slot 0 runs one 8 s shard (6 s compute), slot 1 one 6 s shard (5 s
    compute); against a 10 s batch wall the exact ledger is compute 11,
    shm 1.4, plan 1.2, overhead 0.4, idle 6 slot-seconds.
    """
    session = ObsSession()
    merge_blob(
        session, _blob(0, 0, 8.0, compute=6.0, shm=0.5, plan=1.0,
                       checksum=0.3), slot=0
    )
    merge_blob(
        session, _blob(1, 1, 6.0, compute=5.0, shm=0.4, plan=0.2,
                       checksum=0.2), slot=1
    )
    return session


class TestLedger:
    def test_categories_sum_to_wall(self):
        report = attribute_session(_merged_session(), wall_s=10.0)
        assert report.slots == 2
        assert report.ledger_sum_s == pytest.approx(10.0, rel=1e-9)
        assert abs(report.ledger_residual) < 0.05

    def test_exact_category_values(self):
        report = attribute_session(_merged_session(), wall_s=10.0)
        ss = report.slot_seconds
        assert ss["worker.compute"] == pytest.approx(11.0)
        assert ss["worker.shm"] == pytest.approx(1.4)
        assert ss["worker.plan"] == pytest.approx(1.2)
        assert ss["worker.overhead"] == pytest.approx(0.4)
        assert ss["idle"] == pytest.approx(6.0)
        # Wall-equivalents are the slot-seconds spread over both slots.
        assert report.ledger["worker.compute"] == pytest.approx(5.5)

    def test_slot_seconds_budget_is_wall_times_slots(self):
        report = attribute_session(_merged_session(), wall_s=10.0)
        assert sum(report.slot_seconds.values()) == pytest.approx(
            report.wall_s * report.slots
        )

    def test_all_declared_categories_present(self):
        report = attribute_session(_merged_session(), wall_s=10.0)
        assert set(report.ledger) == set(LEDGER_CATEGORIES)

    def test_crashed_worker_slot_counts_as_pure_idle(self):
        # The caller knows 3 slots existed; the third never reported a
        # blob (crashed before finishing a shard): its whole wall is idle.
        report = attribute_session(_merged_session(), wall_s=10.0, slots=3)
        assert report.slot_seconds["idle"] == pytest.approx(6.0 + 10.0)
        assert report.ledger_sum_s == pytest.approx(10.0)

    def test_speedup_vs_ideal_bound(self):
        report = attribute_session(_merged_session(), wall_s=10.0)
        assert report.serial_compute_s == pytest.approx(11.0)
        assert report.measured_speedup == pytest.approx(1.1)
        assert report.ideal_speedup == 2.0
        assert report.efficiency == pytest.approx(0.55)
        assert report.ideal_wall_s == pytest.approx(5.5)

    def test_no_telemetry_raises(self):
        with pytest.raises(ObservabilityError, match="slot"):
            attribute_session(ObsSession(), wall_s=1.0)

    def test_missing_wall_without_par_run_raises(self):
        with pytest.raises(ObservabilityError, match="par.run"):
            attribute_session(_merged_session())


class TestQueueWait:
    def test_dispatch_to_start_lag_summed(self):
        spans = [
            {"kind": "span", "name": "par.run", "start_s": 0.0,
             "duration_s": 10.0, "attrs": {}},
            {"kind": "span", "name": "par.worker.shard", "start_s": 2.0,
             "duration_s": 3.0,
             "attrs": {"batch": "b", "shard": 0, "attempt": 1}},
            {"kind": "span", "name": "par.worker.shard", "start_s": 4.5,
             "duration_s": 3.0,
             "attrs": {"batch": "b", "shard": 1, "attempt": 1}},
            {"kind": "metric", "name": "par.slot.0.busy_s",
             "type": "counter", "value": 6.0},
        ]
        events = [
            {"kind": "event", "event": "shard.dispatched", "t_s": 0.5,
             "batch": "b", "shard": 0, "attempt": 1},
            {"kind": "event", "event": "shard.dispatched", "t_s": 1.0,
             "batch": "b", "shard": 1, "attempt": 1},
        ]
        report = attribute_jsonl(spans + events)
        # (2.0 - 0.5) + (4.5 - 1.0)
        assert report.diagnostics["queue_wait_s"] == pytest.approx(5.0)

    def test_unmatched_attempts_contribute_nothing(self):
        spans = [
            {"kind": "span", "name": "par.worker.shard", "start_s": 2.0,
             "duration_s": 3.0,
             "attrs": {"batch": "b", "shard": 9, "attempt": 2}},
            {"kind": "metric", "name": "par.slot.0.busy_s",
             "type": "counter", "value": 3.0},
        ]
        report = attribute_jsonl(spans, wall_s=5.0)
        assert report.diagnostics["queue_wait_s"] == 0.0


class TestRendering:
    def test_format_mentions_every_category_and_speedups(self):
        report = attribute_session(_merged_session(), wall_s=10.0)
        text = format_attribution(report)
        for category in LEDGER_CATEGORIES:
            assert category in text
        assert "measured 1.10x vs ideal 2.00x" in text
        assert "ledger sum" in text

    def test_json_round_trips_and_carries_format_tag(self):
        import json

        report = attribute_session(_merged_session(), wall_s=10.0)
        payload = json.loads(json.dumps(attribution_to_json(report)))
        assert payload["format"] == "repro.obs.attrib/v1"
        assert payload["slots"] == 2
        assert payload["measured_speedup"] == pytest.approx(1.1)
        assert sum(payload["ledger_wall_eq_s"].values()) == pytest.approx(
            payload["wall_s"]
        )

    def test_attribution_dataclass_zero_guards(self):
        empty = Attribution(wall_s=0.0, slots=0, shards=0, batches=0)
        assert empty.measured_speedup == 0.0
        assert empty.efficiency == 0.0
        assert empty.ideal_wall_s == 0.0
        assert empty.ledger_residual == 0.0


class TestRealMergedCounters:
    def test_merge_blob_feeds_the_histograms_attrib_reads(self):
        session = _merged_session()
        assert session.metrics.get("par.worker.compute_s").sum == (
            pytest.approx(11.0)
        )
        assert session.metrics.get("par.slot.0.busy_s").value == (
            pytest.approx(8.0)
        )

    def test_wall_defaults_to_par_run_spans(self):
        session = _merged_session()
        index = session.spans.open("par.run", {})
        record = session.spans.records[index]
        session.spans.close(index)
        record.duration_s = 10.0  # pin the synthetic batch wall
        report = attribute_session(session)
        assert report.wall_s == pytest.approx(10.0)
        assert report.batches == 1


class TestServeSection:
    """The front-door rollup rides along when serve metrics are present."""

    def _with_serve_metrics(self):
        session = _merged_session()
        m = session.metrics
        m.counter("serve.requests.admitted").inc(20)
        m.counter("serve.requests.completed").inc(18)
        m.counter("serve.requests.failed").inc(1)
        m.counter("serve.shed").inc(1)
        m.counter("serve.batches").inc(3)
        m.gauge("serve.queue.depth").set(2)
        for size in (4, 8):
            m.histogram("serve.coalesce.batch_size").observe(size)
        m.histogram("serve.batch.wait_s").observe(0.002)
        for latency in (0.010, 0.020):
            m.histogram("serve.latency_s.polymul").observe(latency)
            m.histogram("serve.coalesce_wait_s.polymul").observe(0.001)
            m.histogram("serve.queue_wait_s.polymul").observe(0.002)
            m.histogram("serve.compute_s.polymul").observe(0.005)
        return session

    def test_absent_without_serve_traffic(self):
        report = attribute_session(_merged_session(), wall_s=10.0)
        assert report.serve == {}
        assert "serve front door" not in format_attribution(report)

    def test_populated_and_rendered_with_serve_traffic(self):
        session = self._with_serve_metrics()
        report = attribute_session(session, wall_s=10.0)
        serve = report.serve
        assert serve["admitted"] == 20
        assert serve["completed"] == 18
        assert serve["shed"] == 1
        assert serve["batches"] == 3
        assert serve["coalesce_fill"] == pytest.approx(6.0)
        assert serve["backlog_depth"] == 2
        ops = serve["ops"]
        assert set(ops) == {"polymul"}
        assert ops["polymul"]["compute_p99_s"] == pytest.approx(0.005)
        assert ops["polymul"]["queue_wait_p99_s"] == pytest.approx(0.002)

        text = format_attribution(report)
        assert "serve front door" in text
        assert "polymul" in text

        payload = attribution_to_json(report)
        assert payload["serve"]["admitted"] == 20
