"""Tests for repro.par: sharded multi-process batch execution.

Covers bit-exactness against the fast engine (including
hypothesis-sampled 64-124-bit primes), worker-crash injection
(retry-then-fallback with correct results and ``par.*`` counters),
executor lifecycle, and shared-memory cleanup on interpreter exit.
"""

import os
import random
import signal
import subprocess
import sys
import threading
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arith.primes import find_ntt_prime
from repro.errors import ArithmeticDomainError, ParallelExecutionError
from repro.fast.blas import FastBlasPlan
from repro.fast.ntt import FastNegacyclic, FastNtt
from repro.kernels import get_backend
from repro.obs import observing
from repro.par import (
    ParallelExecutor,
    ParBlasPlan,
    ParNegacyclic,
    ParNtt,
    default_executor,
    parallel_rns_mul,
    shard_bounds,
)
from repro.par import shm
from repro.rns.basis import RnsBasis
from repro.rns.poly import RnsPolynomialRing

N = 16
Q = find_ntt_prime(62, 2 * N)

_SRC = str(Path(__file__).resolve().parents[1] / "src")


def _vectors(seed, count=4, n=N, q=Q):
    rng = random.Random(seed)
    return [[rng.randrange(q) for _ in range(n)] for _ in range(count)]


@pytest.fixture(scope="module")
def pool():
    # adaptive=False: several tests assert exact shard/dispatch counts,
    # which adaptive sizing would fold once compute history accumulates.
    executor = ParallelExecutor(workers=2, task_timeout=30.0, adaptive=False)
    executor.start()
    yield executor
    executor.close()


class TestShardBounds:
    def test_covers_range_without_overlap(self):
        bounds = shard_bounds(10, 3)
        assert bounds == [(0, 4), (4, 7), (7, 10)]

    def test_never_more_shards_than_items(self):
        assert shard_bounds(2, 8) == [(0, 1), (1, 2)]

    def test_single_item(self):
        assert shard_bounds(1, 4) == [(0, 1)]

    def test_empty_range_has_no_shards(self):
        # The old behaviour manufactured one degenerate (0, 0) shard
        # and dispatched it through the whole staging/pool machinery.
        assert shard_bounds(0, 4) == []
        assert shard_bounds(-3, 2) == []


class TestBitExactness:
    def test_ntt_forward_batch(self, pool):
        batch = _vectors(1)
        par, fast = ParNtt(N, Q, executor=pool), FastNtt(N, Q)
        assert par.forward(batch) == fast.forward(batch)
        assert par.forward(batch, natural_order=False) == fast.forward(
            batch, natural_order=False
        )

    def test_ntt_inverse_roundtrip(self, pool):
        batch = _vectors(2)
        par = ParNtt(N, Q, executor=pool)
        assert par.inverse(par.forward(batch)) == batch

    def test_ntt_flat_input(self, pool):
        vec = _vectors(3, count=1)[0]
        assert ParNtt(N, Q, executor=pool).forward(vec) == FastNtt(N, Q).forward(vec)

    def test_negacyclic_multiply(self, pool):
        f, g = _vectors(4), _vectors(5)
        par, fast = ParNegacyclic(N, Q, executor=pool), FastNegacyclic(N, Q)
        assert par.multiply(f, g) == fast.multiply(f, g)

    def test_cyclic_multiply(self, pool):
        f, g = _vectors(6), _vectors(7)
        par, fast = ParNtt(N, Q, executor=pool), FastNtt(N, Q)
        assert par.cyclic_multiply(f, g) == fast.cyclic_multiply(f, g)

    def test_blas_operations(self, pool):
        f, g = _vectors(8), _vectors(9)
        par, fast = ParBlasPlan(Q, executor=pool), FastBlasPlan(Q)
        assert par.vector_add(f, g) == fast.vector_add(f, g)
        assert par.vector_sub(f, g) == fast.vector_sub(f, g)
        assert par.vector_mul(f, g) == fast.vector_mul(f, g)
        assert par.axpy(12345, f, g) == fast.axpy(12345, f, g)

    def test_axpy_rejects_unreduced_scalar(self, pool):
        f, g = _vectors(10), _vectors(11)
        with pytest.raises(ArithmeticDomainError):
            ParBlasPlan(Q, executor=pool).axpy(Q, f, g)

    @settings(deadline=None, max_examples=8)
    @given(
        bits=st.integers(min_value=64, max_value=124),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_wide_primes_match_fast(self, pool, bits, seed):
        n = 8
        q = find_ntt_prime(bits, 2 * n)
        rng = random.Random(seed)
        f = [[rng.randrange(q) for _ in range(n)] for _ in range(2)]
        g = [[rng.randrange(q) for _ in range(n)] for _ in range(2)]
        par = ParNegacyclic(n, q, executor=pool)
        fast = FastNegacyclic(n, q)
        assert par.multiply(f, g) == fast.multiply(f, g)


class TestEnginePlumbing:
    def test_rns_ring_parallel_matches_fast(self, pool):
        backend = get_backend("mqx")
        basis = RnsBasis.generate(3, 62, 2 * N)
        rng = random.Random(12)
        coeffs_f = [rng.randrange(basis.modulus) for _ in range(N)]
        coeffs_g = [rng.randrange(basis.modulus) for _ in range(N)]
        for negacyclic in (True, False):
            ring_par = RnsPolynomialRing(
                N, basis, backend, negacyclic=negacyclic, engine="parallel"
            )
            ring_fast = RnsPolynomialRing(
                N, basis, backend, negacyclic=negacyclic, engine="fast"
            )
            got = ring_par.mul(ring_par.encode(coeffs_f), ring_par.encode(coeffs_g))
            want = ring_fast.mul(
                ring_fast.encode(coeffs_f), ring_fast.encode(coeffs_g)
            )
            assert got.residues == want.residues

    def test_parallel_rns_mul_rejects_unreduced_residue(self, pool):
        backend = get_backend("mqx")
        basis = RnsBasis.generate(2, 62, 2 * N)
        ring = RnsPolynomialRing(N, basis, backend, engine="parallel")
        bad = [[basis.primes[0]] + [0] * (N - 1), [0] * N]
        good = [[1] + [0] * (N - 1) for _ in basis.primes]
        with pytest.raises(ArithmeticDomainError):
            parallel_rns_mul(ring, bad, good, executor=pool)

    def test_context_manager_installs_default(self):
        with ParallelExecutor(workers=1) as executor:
            assert default_executor() is executor
        assert default_executor() is not executor


class TestFaultTolerance:
    def test_crash_retry_then_fallback(self):
        batch = _vectors(13)
        expected = FastNtt(N, Q).forward(batch)
        with observing() as session:
            with ParallelExecutor(workers=2, task_timeout=15.0) as executor:
                plan = ParNtt(N, Q, executor=executor)
                executor.inject_crash(1)
                assert plan.forward(batch) == expected
                # One retry (which crashes again), then in-process fallback.
                assert executor.stats["retries"] == 1
                assert executor.stats["fallbacks"] == 1
                assert executor.stats["restarts"] >= 1
                # The pool still serves work after the restarts.
                assert plan.forward(batch) == expected
            metrics = session.metrics
            assert metrics.get("par.retries").value == 1
            assert metrics.get("par.fallbacks").value == 1
            assert metrics.get("par.workers.restarted").value >= 1
            dispatched = metrics.get("par.shards.dispatched").value
            completed = metrics.get("par.shards.completed").value
            # The crashed shard completed in-process, not in a worker.
            assert completed == dispatched - 1

    def test_unknown_op_degrades_then_raises(self, pool):
        before = dict(pool.stats)
        with pytest.raises(ParallelExecutionError):
            pool.run([{"op": "not-an-op"}])
        assert pool.stats["retries"] == before["retries"] + 1
        assert pool.stats["fallbacks"] == before["fallbacks"] + 1

    def test_hung_worker_terminated_once(self):
        from repro.resil.inject import Fault, FaultPlan

        batch = _vectors(20)
        expected = FastNtt(N, Q).forward(batch)
        with observing() as session:
            with ParallelExecutor(
                workers=1, task_timeout=0.4, adaptive=False
            ) as executor:
                plan = ParNtt(N, Q, executor=executor)
                executor.inject(
                    FaultPlan({0: Fault("hang", seconds=30.0)})
                )
                assert plan.forward(batch) == expected
                executor.inject(None)
                # Exactly one terminate for one hang: the old loop
                # re-signalled (and re-counted) on every poll tick
                # because the claim was never cleared.
                assert executor.stats["hung"] == 1
                assert executor.stats["restarts"] >= 1
                # Hangs are metered apart from crash-restarts.
                assert session.metrics.get("par.workers.hung").value == 1

    def test_stale_recovered_result_metered(self):
        batch = _vectors(21)
        expected = FastNtt(N, Q).forward(batch)
        with observing() as session:
            with ParallelExecutor(
                workers=1, task_timeout=30.0, adaptive=False
            ) as executor:
                # A straggler for a task no batch owns any more: the
                # "recovered" flavor (its shard already completed via
                # retry or fallback). It must be discarded *and* metered
                # — previously it was dropped silently.
                executor._results.put(("done", 10**9, 0, 0, 0.0))
                plan = ParNtt(N, Q, executor=executor)
                assert plan.forward(batch) == expected
                assert executor.stats["stale"] == 1
                assert executor.stats["stale_recovered"] == 1
                assert executor.stats["stale_superseded"] == 0
            assert session.metrics.get("par.stale_results").value == 1
            assert (
                session.metrics.get("par.stale_results.recovered").value == 1
            )

    @pytest.mark.skipif(
        not hasattr(signal, "SIGSTOP"), reason="needs SIGSTOP/SIGCONT"
    )
    def test_limbo_requeue_does_not_charge_breaker(self):
        from repro.resil.policy import CircuitBreaker

        # A single-failure threshold makes any breaker charge visible:
        # the old quiet-timeout net routed limbo shards through the
        # failure path, so one healthy-but-stalled batch tripped it.
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=60.0)
        batch = _vectors(22)
        expected = FastNtt(N, Q).forward(batch)
        with ParallelExecutor(
            workers=1, task_timeout=0.4, adaptive=False, breaker=breaker
        ) as executor:
            plan = ParNtt(N, Q, executor=executor)
            assert plan.forward(batch) == expected  # warm the worker
            pid = executor._procs[0].pid
            os.kill(pid, signal.SIGSTOP)
            timer = threading.Timer(1.0, os.kill, (pid, signal.SIGCONT))
            timer.start()
            try:
                assert plan.forward(batch) == expected
            finally:
                timer.cancel()
                try:
                    os.kill(pid, signal.SIGCONT)
                except OSError:
                    pass
            assert executor.stats["limbo_requeues"] >= 1
            assert breaker.state == "closed"

    def test_closed_executor_rejects_work(self):
        executor = ParallelExecutor(workers=1)
        executor.close()
        with pytest.raises(ParallelExecutionError):
            executor.run([{"op": "ntt"}])

    def test_invalid_pool_parameters(self):
        with pytest.raises(ParallelExecutionError):
            ParallelExecutor(workers=-1)
        with pytest.raises(ParallelExecutionError):
            ParallelExecutor(task_timeout=0)
        with pytest.raises(ParallelExecutionError):
            ParallelExecutor(retries=-1)


class TestEmptyBatch:
    def test_empty_batch_short_circuits(self, pool):
        plan = ParNtt(N, Q, executor=pool)
        before = pool.stats["dispatched"]
        empty = np.zeros((0, N, 2), dtype=np.uint64)
        out = plan.forward(empty)
        assert out.shape == (0, N, 2)
        inv = plan.inverse(empty)
        assert inv.shape == (0, N, 2)
        # No staging, no pool round trip: the old path dispatched one
        # degenerate (0, 0) shard per call.
        assert pool.stats["dispatched"] == before
        assert shm.created_segments() == 0


class TestArenaPool:
    def test_segments_reused_across_batches(self, pool):
        plan = ParNtt(N, Q, executor=pool)
        batch = _vectors(15)
        plan.forward(batch)  # warm the size classes for this shape
        before = dict(pool.arena.stats)
        held = shm.arena_segments()
        for _ in range(3):
            plan.forward(batch)
        after = pool.arena.stats
        # Steady state: every lease is served from the free lists — no
        # new /dev/shm segments, no growth in what the arena holds.
        assert after["creates"] == before["creates"]
        assert after["reuses"] >= before["reuses"] + 6
        assert shm.arena_segments() == held
        assert shm.created_segments() == 0

    def test_drain_on_close_releases_everything(self):
        base = shm.arena_segments()  # other live pools' arenas
        executor = ParallelExecutor(workers=1, adaptive=False)
        with executor:
            ParNtt(N, Q, executor=executor).forward(_vectors(16))
            assert shm.arena_segments() > base
        assert shm.arena_segments() == base
        assert executor.stats["arena_drained"] > 0

    def test_lease_rounds_up_to_size_class(self):
        base = shm.arena_segments()
        arena = shm.ArenaPool()
        try:
            seg_small, _ = arena.lease((2, 2))
            arena.release(seg_small)
            # A same-class lease reuses the segment a smaller shape left.
            seg_again, view = arena.lease((4, 2))
            assert seg_again.name == seg_small.name
            assert view.shape == (4, 2)
            arena.release(seg_again)
            assert arena.stats["reuses"] == 1
        finally:
            arena.drain()
        assert shm.arena_segments() == base


class TestSharedMemory:
    def test_no_segments_leak_after_calls(self, pool):
        ParNtt(N, Q, executor=pool).forward(_vectors(14))
        assert shm.created_segments() == 0

    def test_release_rejects_foreign_segment(self):
        seg, _view = shm.create_segment((2, 2))
        shm.release_segment(seg)
        with pytest.raises(ParallelExecutionError):
            shm.release_segment(seg)

    def test_cleanup_on_interpreter_exit(self):
        # A child process creates segments and exits without releasing
        # them; its atexit hook must leave nothing to attach to.
        code = (
            "from repro.par import shm\n"
            "seg1, _ = shm.create_segment((4, 2))\n"
            "seg2, _ = shm.create_segment((4, 2))\n"
            "print(seg1.name)\n"
            "print(seg2.name)\n"
        )
        env = dict(os.environ, PYTHONPATH=_SRC)
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env=env,
            timeout=60,
        )
        assert proc.returncode == 0, proc.stderr
        names = proc.stdout.split()
        assert len(names) == 2
        for name in names:
            assert name.startswith(shm.SEGMENT_PREFIX)
            with pytest.raises(FileNotFoundError):
                shm.attach_segment(name)


class TestPinGracefulDegrade:
    """``pin_workers=True`` on a platform without affinity syscalls must
    warn once, meter the skip, and run unpinned — never raise."""

    def _fresh_warn_flag(self):
        from repro.par import executor as executor_mod

        executor_mod._PIN_WARNED = False
        return executor_mod

    def test_explicit_pin_warns_once_and_meters(self, monkeypatch):
        executor_mod = self._fresh_warn_flag()
        monkeypatch.delattr(os, "sched_setaffinity", raising=False)
        pool = ParallelExecutor(workers=1, pin_workers=True)
        with pytest.warns(RuntimeWarning, match="pin_workers=True ignored"):
            assert pool._resolve_pins() == []
        assert pool.stats["pin_unsupported"] == 1
        # Warn-once: the second resolution meters but stays silent.
        import warnings as warnings_mod

        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error")
            assert pool._resolve_pins() == []
        assert pool.stats["pin_unsupported"] == 2
        assert executor_mod._PIN_WARNED

    def test_auto_pin_stays_silent(self, monkeypatch):
        self._fresh_warn_flag()
        monkeypatch.delattr(os, "sched_setaffinity", raising=False)
        pool = ParallelExecutor(workers=1, pin_workers=None)
        import warnings as warnings_mod

        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error")
            assert pool._resolve_pins() == []
        assert pool.stats["pin_unsupported"] == 0

    def test_pool_still_works_unpinned(self, monkeypatch):
        self._fresh_warn_flag()
        monkeypatch.delattr(os, "sched_setaffinity", raising=False)
        with pytest.warns(RuntimeWarning):
            with ParallelExecutor(
                workers=1, pin_workers=True, adaptive=False
            ) as pool:
                plan = ParNtt(N, Q, executor=pool)
                reference = FastNtt(N, Q, table=plan.plan.table)
                data = _vectors(17)
                assert plan.forward(data) == reference.forward(data)
        assert pool.stats["pin_unsupported"] >= 1
