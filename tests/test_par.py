"""Tests for repro.par: sharded multi-process batch execution.

Covers bit-exactness against the fast engine (including
hypothesis-sampled 64-124-bit primes), worker-crash injection
(retry-then-fallback with correct results and ``par.*`` counters),
executor lifecycle, and shared-memory cleanup on interpreter exit.
"""

import os
import random
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arith.primes import find_ntt_prime
from repro.errors import ArithmeticDomainError, ParallelExecutionError
from repro.fast.blas import FastBlasPlan
from repro.fast.ntt import FastNegacyclic, FastNtt
from repro.kernels import get_backend
from repro.obs import observing
from repro.par import (
    ParallelExecutor,
    ParBlasPlan,
    ParNegacyclic,
    ParNtt,
    default_executor,
    parallel_rns_mul,
    shard_bounds,
)
from repro.par import shm
from repro.rns.basis import RnsBasis
from repro.rns.poly import RnsPolynomialRing

N = 16
Q = find_ntt_prime(62, 2 * N)

_SRC = str(Path(__file__).resolve().parents[1] / "src")


def _vectors(seed, count=4, n=N, q=Q):
    rng = random.Random(seed)
    return [[rng.randrange(q) for _ in range(n)] for _ in range(count)]


@pytest.fixture(scope="module")
def pool():
    executor = ParallelExecutor(workers=2, task_timeout=30.0)
    executor.start()
    yield executor
    executor.close()


class TestShardBounds:
    def test_covers_range_without_overlap(self):
        bounds = shard_bounds(10, 3)
        assert bounds == [(0, 4), (4, 7), (7, 10)]

    def test_never_more_shards_than_items(self):
        assert shard_bounds(2, 8) == [(0, 1), (1, 2)]

    def test_single_item(self):
        assert shard_bounds(1, 4) == [(0, 1)]


class TestBitExactness:
    def test_ntt_forward_batch(self, pool):
        batch = _vectors(1)
        par, fast = ParNtt(N, Q, executor=pool), FastNtt(N, Q)
        assert par.forward(batch) == fast.forward(batch)
        assert par.forward(batch, natural_order=False) == fast.forward(
            batch, natural_order=False
        )

    def test_ntt_inverse_roundtrip(self, pool):
        batch = _vectors(2)
        par = ParNtt(N, Q, executor=pool)
        assert par.inverse(par.forward(batch)) == batch

    def test_ntt_flat_input(self, pool):
        vec = _vectors(3, count=1)[0]
        assert ParNtt(N, Q, executor=pool).forward(vec) == FastNtt(N, Q).forward(vec)

    def test_negacyclic_multiply(self, pool):
        f, g = _vectors(4), _vectors(5)
        par, fast = ParNegacyclic(N, Q, executor=pool), FastNegacyclic(N, Q)
        assert par.multiply(f, g) == fast.multiply(f, g)

    def test_cyclic_multiply(self, pool):
        f, g = _vectors(6), _vectors(7)
        par, fast = ParNtt(N, Q, executor=pool), FastNtt(N, Q)
        assert par.cyclic_multiply(f, g) == fast.cyclic_multiply(f, g)

    def test_blas_operations(self, pool):
        f, g = _vectors(8), _vectors(9)
        par, fast = ParBlasPlan(Q, executor=pool), FastBlasPlan(Q)
        assert par.vector_add(f, g) == fast.vector_add(f, g)
        assert par.vector_sub(f, g) == fast.vector_sub(f, g)
        assert par.vector_mul(f, g) == fast.vector_mul(f, g)
        assert par.axpy(12345, f, g) == fast.axpy(12345, f, g)

    def test_axpy_rejects_unreduced_scalar(self, pool):
        f, g = _vectors(10), _vectors(11)
        with pytest.raises(ArithmeticDomainError):
            ParBlasPlan(Q, executor=pool).axpy(Q, f, g)

    @settings(deadline=None, max_examples=8)
    @given(
        bits=st.integers(min_value=64, max_value=124),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_wide_primes_match_fast(self, pool, bits, seed):
        n = 8
        q = find_ntt_prime(bits, 2 * n)
        rng = random.Random(seed)
        f = [[rng.randrange(q) for _ in range(n)] for _ in range(2)]
        g = [[rng.randrange(q) for _ in range(n)] for _ in range(2)]
        par = ParNegacyclic(n, q, executor=pool)
        fast = FastNegacyclic(n, q)
        assert par.multiply(f, g) == fast.multiply(f, g)


class TestEnginePlumbing:
    def test_rns_ring_parallel_matches_fast(self, pool):
        backend = get_backend("mqx")
        basis = RnsBasis.generate(3, 62, 2 * N)
        rng = random.Random(12)
        coeffs_f = [rng.randrange(basis.modulus) for _ in range(N)]
        coeffs_g = [rng.randrange(basis.modulus) for _ in range(N)]
        for negacyclic in (True, False):
            ring_par = RnsPolynomialRing(
                N, basis, backend, negacyclic=negacyclic, engine="parallel"
            )
            ring_fast = RnsPolynomialRing(
                N, basis, backend, negacyclic=negacyclic, engine="fast"
            )
            got = ring_par.mul(ring_par.encode(coeffs_f), ring_par.encode(coeffs_g))
            want = ring_fast.mul(
                ring_fast.encode(coeffs_f), ring_fast.encode(coeffs_g)
            )
            assert got.residues == want.residues

    def test_parallel_rns_mul_rejects_unreduced_residue(self, pool):
        backend = get_backend("mqx")
        basis = RnsBasis.generate(2, 62, 2 * N)
        ring = RnsPolynomialRing(N, basis, backend, engine="parallel")
        bad = [[basis.primes[0]] + [0] * (N - 1), [0] * N]
        good = [[1] + [0] * (N - 1) for _ in basis.primes]
        with pytest.raises(ArithmeticDomainError):
            parallel_rns_mul(ring, bad, good, executor=pool)

    def test_context_manager_installs_default(self):
        with ParallelExecutor(workers=1) as executor:
            assert default_executor() is executor
        assert default_executor() is not executor


class TestFaultTolerance:
    def test_crash_retry_then_fallback(self):
        batch = _vectors(13)
        expected = FastNtt(N, Q).forward(batch)
        with observing() as session:
            with ParallelExecutor(workers=2, task_timeout=15.0) as executor:
                plan = ParNtt(N, Q, executor=executor)
                executor.inject_crash(1)
                assert plan.forward(batch) == expected
                # One retry (which crashes again), then in-process fallback.
                assert executor.stats["retries"] == 1
                assert executor.stats["fallbacks"] == 1
                assert executor.stats["restarts"] >= 1
                # The pool still serves work after the restarts.
                assert plan.forward(batch) == expected
            metrics = session.metrics
            assert metrics.get("par.retries").value == 1
            assert metrics.get("par.fallbacks").value == 1
            assert metrics.get("par.workers.restarted").value >= 1
            dispatched = metrics.get("par.shards.dispatched").value
            completed = metrics.get("par.shards.completed").value
            # The crashed shard completed in-process, not in a worker.
            assert completed == dispatched - 1

    def test_unknown_op_degrades_then_raises(self, pool):
        before = dict(pool.stats)
        with pytest.raises(ParallelExecutionError):
            pool.run([{"op": "not-an-op"}])
        assert pool.stats["retries"] == before["retries"] + 1
        assert pool.stats["fallbacks"] == before["fallbacks"] + 1

    def test_closed_executor_rejects_work(self):
        executor = ParallelExecutor(workers=1)
        executor.close()
        with pytest.raises(ParallelExecutionError):
            executor.run([{"op": "ntt"}])

    def test_invalid_pool_parameters(self):
        with pytest.raises(ParallelExecutionError):
            ParallelExecutor(workers=-1)
        with pytest.raises(ParallelExecutionError):
            ParallelExecutor(task_timeout=0)
        with pytest.raises(ParallelExecutionError):
            ParallelExecutor(retries=-1)


class TestSharedMemory:
    def test_no_segments_leak_after_calls(self, pool):
        ParNtt(N, Q, executor=pool).forward(_vectors(14))
        assert shm.created_segments() == 0

    def test_release_rejects_foreign_segment(self):
        seg, _view = shm.create_segment((2, 2))
        shm.release_segment(seg)
        with pytest.raises(ParallelExecutionError):
            shm.release_segment(seg)

    def test_cleanup_on_interpreter_exit(self):
        # A child process creates segments and exits without releasing
        # them; its atexit hook must leave nothing to attach to.
        code = (
            "from repro.par import shm\n"
            "seg1, _ = shm.create_segment((4, 2))\n"
            "seg2, _ = shm.create_segment((4, 2))\n"
            "print(seg1.name)\n"
            "print(seg2.name)\n"
        )
        env = dict(os.environ, PYTHONPATH=_SRC)
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env=env,
            timeout=60,
        )
        assert proc.returncode == 0, proc.stderr
        names = proc.stdout.split()
        assert len(names) == 2
        for name in names:
            assert name.startswith(shm.SEGMENT_PREFIX)
            with pytest.raises(FileNotFoundError):
                shm.attach_segment(name)
