"""Cross-process telemetry: context propagation, blobs, merged timelines.

Covers the :mod:`repro.obs.dist` layer end to end: specs carry context
headers only while a session is active (the zero-cost invariant), the
worker protocol ships blobs exactly when asked to, stale-generation
telemetry is discarded and metered, faulted shards keep their
parent-side records, and ``run_timeline`` produces a valid merged
Chrome trace with one lane per worker.
"""

import json
import os
import queue
import random
import time

import pytest

from repro.arith.primes import find_ntt_prime
from repro.fast.limbs import limbs_from_ints
from repro.fast.ntt import FastNtt
from repro.obs import dist, observing
from repro.obs.export import (
    LANE_PID_KEY,
    from_jsonl,
    to_chrome_trace,
    to_jsonl,
    validate_chrome_trace,
    worker_lanes,
)
from repro.obs.session import ObsSession
from repro.obs.timeline import format_worker_table, run_timeline
from repro.par import ParallelExecutor, ParNtt, shm
from repro.par.worker import worker_main
from repro.resil.inject import Fault, FaultPlan

N = 16
Q = find_ntt_prime(62, 2 * N)


def _vectors(seed, count=4, n=N, q=Q):
    rng = random.Random(seed)
    return [[rng.randrange(q) for _ in range(n)] for _ in range(count)]


@pytest.fixture(scope="module")
def pool():
    # adaptive=False: lane/blob-count assertions expect one shard per
    # worker, which adaptive sizing would fold for these tiny batches.
    executor = ParallelExecutor(workers=2, task_timeout=30.0, adaptive=False)
    executor.start()
    yield executor
    executor.close()


class TestContextHeader:
    def test_make_context_fields(self):
        ctx = dist.make_context("batch-1-0", 3)
        assert ctx == {"batch": "batch-1-0", "shard": 3, "attempt": 1, "gen": 0}

    def test_refresh_context_installs_fresh_dict(self):
        spec = {dist.CTX_KEY: dist.make_context("b", 0)}
        before = spec[dist.CTX_KEY]
        dist.refresh_context(spec, attempt=2, gen=1)
        assert spec[dist.CTX_KEY] == {
            "batch": "b", "shard": 0, "attempt": 2, "gen": 1,
        }
        # The superseded header is untouched: a straggling worker that
        # already pickled the old spec keeps reporting attempt 1.
        assert before["attempt"] == 1

    def test_refresh_context_without_header_is_noop(self):
        spec = {"op": "ntt"}
        dist.refresh_context(spec, attempt=2, gen=1)
        assert dist.CTX_KEY not in spec

    def test_batch_ids_are_unique(self):
        assert dist.next_batch_id() != dist.next_batch_id()


class TestZeroCostWhenDisabled:
    def _capture_dispatch(self, executor):
        captured = []
        original = executor._tasks.put

        def spy(item):
            captured.append(item)
            original(item)

        executor._tasks.put = spy
        return captured

    def test_specs_omit_header_without_session(self, pool):
        batch = _vectors(1)
        plan = ParNtt(N, Q, executor=pool)
        captured = self._capture_dispatch(pool)
        try:
            plan.forward(batch)
        finally:
            del pool._tasks.put
        assert captured
        for _, _, spec in captured:
            assert dist.CTX_KEY not in spec

    def test_specs_carry_header_with_session(self, pool):
        batch = _vectors(2)
        plan = ParNtt(N, Q, executor=pool)
        captured = self._capture_dispatch(pool)
        try:
            with observing():
                plan.forward(batch)
        finally:
            del pool._tasks.put
        assert captured
        batches = set()
        for _, _, spec in captured:
            ctx = spec[dist.CTX_KEY]
            batches.add(ctx["batch"])
            assert ctx["attempt"] == 1 and ctx["gen"] == 0
        assert len(batches) == 1


def _ntt_spec(data, root, extra=None):
    """Build one executable task spec over fresh shm segments."""
    seg_x, view = shm.create_segment(data.shape)
    view[...] = data
    del view
    seg_out, view = shm.create_segment(data.shape)
    del view
    spec = {
        "op": "ntt",
        "n": N,
        "q": Q,
        "root": root,
        "direction": "forward",
        "natural_order": True,
        "shape": list(data.shape),
        "rows": [0, data.shape[0]],
        "x": seg_x.name,
        "out": seg_out.name,
    }
    spec.update(extra or {})
    return spec, (seg_x, seg_out)


class TestWorkerProtocol:
    def _run_worker(self, spec):
        tasks, results = queue.Queue(), queue.Queue()
        tasks.put((7, 0, spec))
        tasks.put(None)
        worker_main(0, [0], tasks, results)
        return results.get_nowait()

    def test_no_header_means_five_element_message(self):
        data = limbs_from_ints(_vectors(3, count=2))
        spec, segments = _ntt_spec(data, FastNtt(N, Q).table.root)
        try:
            message = self._run_worker(spec)
        finally:
            for seg in segments:
                shm.release_segment(seg)
        assert message[0] == "done"
        assert len(message) == 5

    def test_header_appends_telemetry_blob(self):
        data = limbs_from_ints(_vectors(4, count=2))
        ctx = dist.make_context("batch-test", 3)
        spec, segments = _ntt_spec(
            data, FastNtt(N, Q).table.root, {dist.CTX_KEY: ctx}
        )
        try:
            message = self._run_worker(spec)
        finally:
            for seg in segments:
                shm.release_segment(seg)
        assert message[0] == "done" and len(message) == 6
        blob = message[5]
        assert blob["v"] == dist.BLOB_VERSION
        assert blob["ctx"] == ctx
        assert blob["pid"] == os.getpid()
        assert blob["ok"] is True
        assert blob["cache"]["ntt"] >= 1
        names = {entry[0] for entry in blob["spans"]}
        assert {"par.worker.shard", "par.worker.plan", "par.worker.compute",
                "par.worker.map_shm"} <= names

    def test_error_message_still_ships_blob(self):
        ctx = dist.make_context("batch-err", 0)
        spec = {"op": "bogus", dist.CTX_KEY: ctx}
        message = self._run_worker(spec)
        assert message[0] == "error" and len(message) == 6
        assert message[5]["ok"] is False
        assert message[5]["ctx"] == ctx


class TestMergeBlob:
    def _blob(self, mono0, spans=(("par.worker.compute", 0.0, 0.001, {}),)):
        return {
            "v": dist.BLOB_VERSION,
            "ctx": dist.make_context("b", 0),
            "pid": 12345,
            "mono0": mono0,
            "wall_s": 0.002,
            "ok": True,
            "spans": [list(entry) for entry in spans],
            "counters": {"engine.fast.calls.ntt.forward": 2.0},
        }

    def test_merge_rolls_up_metrics_and_lanes(self):
        session = ObsSession()
        dist.merge_blob(session, self._blob(time.monotonic()), slot=1)
        m = session.metrics
        assert m.get("par.telemetry.blobs").value == 1
        assert m.get("par.slot.1.shards").value == 1
        assert m.get("par.slot.1.busy_s").value == pytest.approx(0.002)
        assert m.get("par.slot.1.pid").value == 12345
        assert m.get("par.worker.engine.fast.calls.ntt.forward").value == 2.0
        assert m.get("par.worker.compute_s").count == 1
        record = session.spans.records[0]
        assert record.attrs[LANE_PID_KEY] == 12345
        assert record.attrs["slot"] == 1
        assert record.attrs["batch"] == "b"
        assert dist.worker_lane_pids(session.spans.records) == {12345}
        assert dist.slot_numbers(m) == [1]

    def test_clock_skew_clamps_to_epoch(self):
        session = ObsSession()
        dist.merge_blob(session, self._blob(time.monotonic() - 1e6), slot=0)
        record = session.spans.records[0]
        assert record.start_s == 0.0
        trace = to_chrome_trace(session.spans.records)
        validate_chrome_trace(trace)  # ts >= 0 after the clamp


class TestMergedTimeline:
    def test_worker_spans_carry_ids_and_lanes(self, pool):
        batch = _vectors(5)
        plan = ParNtt(N, Q, executor=pool)
        with observing() as session:
            plan.forward(batch)
            compute = [
                r for r in session.spans.records
                if r.name == "par.worker.compute"
            ]
            assert compute
            batches = {r.attrs["batch"] for r in compute}
            assert len(batches) == 1
            for record in compute:
                assert record.attrs["attempt"] == 1
                assert record.attrs["shard"] >= 0
            lanes = dist.worker_lane_pids(session.spans.records)
            assert lanes <= set(pool.worker_pids())
            parent = {
                r.name for r in session.spans.records
                if LANE_PID_KEY not in r.attrs
            }
            assert {"par.run", "par.dispatch", "par.collect"} <= parent
            blobs = session.metrics.get("par.telemetry.blobs")
            assert blobs.value == pool.workers  # one shard per worker
            events = {e["event"] for e in session.events}
            assert {"shard.dispatched", "shard.done"} <= events

    def test_chrome_trace_has_one_lane_per_worker(self, pool):
        batch = _vectors(6)
        plan = ParNtt(N, Q, executor=pool)
        with observing() as session:
            plan.forward(batch)
            trace = to_chrome_trace(session.spans.records)
        validate_chrome_trace(trace)
        lanes = worker_lanes(trace)
        assert len(lanes) == pool.workers
        assert set(lanes) <= set(pool.worker_pids())
        labels = {
            event["args"]["name"]
            for event in trace["traceEvents"]
            if event.get("ph") == "M" and event["pid"] in lanes
        }
        assert all(label.startswith("worker ") for label in labels)

    def test_stale_blob_is_discarded_and_metered(self):
        batch = _vectors(7, count=2)
        with observing() as session:
            with ParallelExecutor(workers=1, task_timeout=30.0) as executor:
                forged = executor._next_id  # the next batch's first task id
                executor.start()
                blob = {
                    "v": dist.BLOB_VERSION,
                    "ctx": {"batch": "bogus", "shard": 0,
                            "attempt": 1, "gen": 99},
                    "pid": 1,
                    "mono0": time.monotonic(),
                    "wall_s": 0.0,
                    "ok": True,
                    "spans": [["par.worker.compute", 0.0, 0.001, {}]],
                    "counters": {},
                }
                executor._results.put(("done", forged, 99, 0, 0.0, blob))
                plan = ParNtt(N, Q, executor=executor)
                assert plan.forward(batch) == FastNtt(N, Q).forward(batch)
                assert executor.stats["stale"] == 1
            assert session.metrics.get("par.telemetry.stale").value == 1
            assert not any(
                r.attrs.get("batch") == "bogus"
                for r in session.spans.records
            )

    def test_crashed_shard_keeps_parent_records_and_reattributes(self):
        batch = _vectors(8)
        with observing() as session:
            with ParallelExecutor(workers=2, task_timeout=30.0) as executor:
                plan = ParNtt(N, Q, executor=executor)
                executor.inject(FaultPlan({0: Fault("crash")}))
                try:
                    assert plan.forward(batch) == FastNtt(N, Q).forward(batch)
                finally:
                    executor.inject(None)
                assert executor.stats["retries"] >= 1
            retries = [e for e in session.events if e["event"] == "shard.retry"]
            assert retries
            assert all(e["attempt"] == 2 for e in retries)
            dispatched = [
                e for e in session.events if e["event"] == "shard.dispatched"
            ]
            assert len(dispatched) == min(2, len(batch))
            second = [
                r for r in session.spans.records
                if r.name == "par.worker.shard" and r.attrs.get("attempt") == 2
            ]
            assert second  # the retried attempt's telemetry was merged
            slot_retries = sum(
                session.metrics.get(f"par.slot.{slot}.retries").value
                for slot in dist.slot_numbers(session.metrics)
                if session.metrics.get(f"par.slot.{slot}.retries") is not None
            )
            assert slot_retries >= 1
            marker = [
                r for r in session.spans.records if r.name == "par.retry"
            ]
            assert marker and marker[0].attrs["attempt"] == 2


class TestEventLog:
    def test_events_round_trip_through_jsonl(self):
        session = ObsSession()
        session.event("shard.done", batch="b", shard=1, attempt=1)
        text = to_jsonl([], None, session.events)
        records = from_jsonl(text)
        assert len(records) == 1
        assert records[0]["kind"] == "event"
        assert records[0]["event"] == "shard.done"
        assert records[0]["batch"] == "b"
        assert records[0]["t_s"] >= 0.0


class TestTimelineHarness:
    def test_run_timeline_end_to_end(self, tmp_path):
        lines = []
        rc = run_timeline(
            workers=2,
            logn=6,
            batch=4,
            limbs=2,
            rounds=1,
            export_formats=("chrome", "jsonl"),
            output_dir=str(tmp_path),
            min_lanes=1,
            emit=lines.append,
        )
        assert rc == 0
        output = "\n".join(lines)
        assert "per-worker utilization" in output
        trace = json.loads((tmp_path / "trace_timeline.json").read_text())
        validate_chrome_trace(trace)
        assert worker_lanes(trace)
        records = from_jsonl((tmp_path / "obs_timeline.jsonl").read_text())
        kinds = {record["kind"] for record in records}
        assert {"span", "event", "metric"} <= kinds

    def test_min_lanes_gate_fails(self, tmp_path):
        rc = run_timeline(
            workers=1,
            logn=6,
            batch=2,
            limbs=2,
            rounds=1,
            export_formats=(),
            output_dir=str(tmp_path),
            min_lanes=5,
            emit=lambda line: None,
        )
        assert rc == 1

    def test_worker_table_formats_slots(self):
        session = ObsSession()
        blob = {
            "v": dist.BLOB_VERSION,
            "ctx": dist.make_context("b", 0),
            "pid": 777,
            "mono0": time.monotonic(),
            "wall_s": 0.5,
            "ok": True,
            "spans": [],
            "counters": {},
        }
        dist.merge_blob(session, blob, slot=0)
        table = format_worker_table(session, wall_s=1.0)
        assert "777" in table
        assert "50.0" in table  # busy fraction of the 1 s wall
