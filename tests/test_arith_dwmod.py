"""Tests for reference double-word modular arithmetic (Section 3.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arith.barrett import BarrettParams
from repro.arith.doubleword import dw_from_int, dw_value
from repro.arith.dwmod import (
    MAX_MODULUS_BITS,
    addmod128,
    check_modulus_128,
    mulmod128,
    submod128,
)
from repro.errors import ArithmeticDomainError

from tests.conftest import BIG_Q, MID_Q, SMALL_Q

MODULI = [SMALL_Q, MID_Q, BIG_Q]


class TestModulusValidation:
    def test_max_bits_is_paper_bound(self):
        assert MAX_MODULUS_BITS == 124

    def test_accepts_124_bit_prime(self):
        assert check_modulus_128(BIG_Q) == BIG_Q

    def test_rejects_125_bits(self):
        with pytest.raises(ArithmeticDomainError):
            check_modulus_128(1 << 124)

    def test_rejects_tiny(self):
        with pytest.raises(ArithmeticDomainError):
            check_modulus_128(2)


@given(st.data())
@settings(max_examples=300)
def test_addmod_matches_reference(data):
    q = data.draw(st.sampled_from(MODULI))
    a = data.draw(st.integers(min_value=0, max_value=q - 1))
    b = data.draw(st.integers(min_value=0, max_value=q - 1))
    out = addmod128(dw_from_int(a), dw_from_int(b), dw_from_int(q))
    assert dw_value(out) == (a + b) % q


@given(st.data())
@settings(max_examples=300)
def test_submod_matches_reference(data):
    q = data.draw(st.sampled_from(MODULI))
    a = data.draw(st.integers(min_value=0, max_value=q - 1))
    b = data.draw(st.integers(min_value=0, max_value=q - 1))
    out = submod128(dw_from_int(a), dw_from_int(b), dw_from_int(q))
    assert dw_value(out) == (a - b) % q


@given(st.data())
@settings(max_examples=300)
def test_mulmod_matches_reference_both_algorithms(data):
    q = data.draw(st.sampled_from(MODULI))
    a = data.draw(st.integers(min_value=0, max_value=q - 1))
    b = data.draw(st.integers(min_value=0, max_value=q - 1))
    algorithm = data.draw(st.sampled_from(["schoolbook", "karatsuba"]))
    out = mulmod128(
        dw_from_int(a), dw_from_int(b), dw_from_int(q), algorithm=algorithm
    )
    assert dw_value(out) == (a * b) % q


class TestEdgeCases:
    def test_add_at_wraparound(self):
        q = BIG_Q
        out = addmod128(dw_from_int(q - 1), dw_from_int(q - 1), dw_from_int(q))
        assert dw_value(out) == q - 2

    def test_add_exactly_q(self):
        q = BIG_Q
        out = addmod128(dw_from_int(1), dw_from_int(q - 1), dw_from_int(q))
        assert dw_value(out) == 0

    def test_sub_identical_operands(self):
        q = BIG_Q
        out = submod128(dw_from_int(5), dw_from_int(5), dw_from_int(q))
        assert dw_value(out) == 0

    def test_mul_with_max_residues(self):
        q = BIG_Q
        out = mulmod128(
            dw_from_int(q - 1), dw_from_int(q - 1), dw_from_int(q)
        )
        assert dw_value(out) == (q - 1) * (q - 1) % q

    def test_mul_by_zero_and_one(self):
        q = MID_Q
        assert dw_value(
            mulmod128(dw_from_int(0), dw_from_int(5), dw_from_int(q))
        ) == 0
        assert dw_value(
            mulmod128(dw_from_int(1), dw_from_int(5), dw_from_int(q))
        ) == 5


class TestErrorPaths:
    def test_unreduced_operand_rejected(self):
        q = SMALL_Q
        with pytest.raises(ArithmeticDomainError):
            addmod128(dw_from_int(q), dw_from_int(0), dw_from_int(q))
        with pytest.raises(ArithmeticDomainError):
            mulmod128(dw_from_int(0), dw_from_int(q), dw_from_int(q))

    def test_mismatched_params_rejected(self):
        with pytest.raises(ArithmeticDomainError):
            mulmod128(
                dw_from_int(1),
                dw_from_int(1),
                dw_from_int(MID_Q),
                params=BarrettParams(SMALL_Q),
            )

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ArithmeticDomainError):
            mulmod128(
                dw_from_int(1),
                dw_from_int(1),
                dw_from_int(MID_Q),
                algorithm="toom-cook",
            )
