"""Cross-backend correctness: every backend must match the references
bit-for-bit (the paper's functional-correctness requirement, Section 4.2).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BackendError
from repro.kernels import Backend, get_backend
from repro.kernels.backend import DWPair, split_dw_words
from repro.kernels.mqx_backend import FEATURE_PRESETS, MqxFeatures

from tests.conftest import ALL_BACKEND_NAMES, BIG_Q, MID_Q, SMALL_Q, random_residues

MODULI = [SMALL_Q, MID_Q, BIG_Q]


def _blocks(rng, backend, q):
    a = random_residues(rng, q, backend.lanes)
    b = random_residues(rng, q, backend.lanes)
    return a, b, backend.load_block(a), backend.load_block(b)


class TestRegistry:
    def test_all_four_backends_registered(self):
        for name in ALL_BACKEND_NAMES:
            assert name in Backend.available()

    def test_unknown_backend_rejected(self):
        with pytest.raises(BackendError):
            get_backend("avx1024")

    def test_lane_counts_match_paper(self):
        assert get_backend("scalar").lanes == 1
        assert get_backend("avx2").lanes == 4
        assert get_backend("avx512").lanes == 8
        assert get_backend("mqx").lanes == 8


@pytest.mark.parametrize("q", MODULI, ids=["q20", "q60", "q124"])
class TestModularOps:
    def test_addmod(self, backend, q, rng):
        ctx = backend.make_modulus(q)
        for _ in range(10):
            a, b, blk_a, blk_b = _blocks(rng, backend, q)
            out = backend.block_values(backend.addmod(blk_a, blk_b, ctx))
            assert out == [(x + y) % q for x, y in zip(a, b)]

    def test_submod(self, backend, q, rng):
        ctx = backend.make_modulus(q)
        for _ in range(10):
            a, b, blk_a, blk_b = _blocks(rng, backend, q)
            out = backend.block_values(backend.submod(blk_a, blk_b, ctx))
            assert out == [(x - y) % q for x, y in zip(a, b)]

    def test_mulmod_schoolbook(self, backend, q, rng):
        ctx = backend.make_modulus(q, algorithm="schoolbook")
        for _ in range(10):
            a, b, blk_a, blk_b = _blocks(rng, backend, q)
            out = backend.block_values(backend.mulmod(blk_a, blk_b, ctx))
            assert out == [(x * y) % q for x, y in zip(a, b)]

    def test_mulmod_karatsuba(self, backend, q, rng):
        ctx = backend.make_modulus(q, algorithm="karatsuba")
        for _ in range(10):
            a, b, blk_a, blk_b = _blocks(rng, backend, q)
            out = backend.block_values(backend.mulmod(blk_a, blk_b, ctx))
            assert out == [(x * y) % q for x, y in zip(a, b)]

    def test_butterfly(self, backend, q, rng):
        ctx = backend.make_modulus(q)
        for _ in range(5):
            a, b, blk_a, blk_b = _blocks(rng, backend, q)
            w = rng.randrange(q)
            plus, minus = backend.butterfly(blk_a, blk_b, backend.broadcast_dw(w), ctx)
            for i in range(backend.lanes):
                t = b[i] * w % q
                assert backend.block_values(plus)[i] == (a[i] + t) % q
                assert backend.block_values(minus)[i] == (a[i] - t) % q


class TestOperandEdgeCases:
    """Boundary residues that stress carry/borrow paths."""

    @pytest.mark.parametrize("name", ALL_BACKEND_NAMES)
    def test_extremes(self, name):
        backend = get_backend(name)
        q = BIG_Q
        ctx = backend.make_modulus(q)
        extremes = [0, 1, q - 1, q - 2, q // 2, (1 << 64) - 1, 1 << 64]
        pairs = [(x, z) for x in extremes for z in extremes]
        for chunk_start in range(0, len(pairs), backend.lanes):
            chunk = pairs[chunk_start : chunk_start + backend.lanes]
            while len(chunk) < backend.lanes:
                chunk.append((0, 0))
            a = [p[0] for p in chunk]
            b = [p[1] for p in chunk]
            blk_a, blk_b = backend.load_block(a), backend.load_block(b)
            assert backend.block_values(backend.addmod(blk_a, blk_b, ctx)) == [
                (x + z) % q for x, z in chunk
            ]
            assert backend.block_values(backend.submod(blk_a, blk_b, ctx)) == [
                (x - z) % q for x, z in chunk
            ]
            assert backend.block_values(backend.mulmod(blk_a, blk_b, ctx)) == [
                (x * z) % q for x, z in chunk
            ]


class TestMqxFeaturePresets:
    @pytest.mark.parametrize("label", sorted(FEATURE_PRESETS))
    def test_every_preset_is_correct(self, label, rng):
        backend = get_backend("mqx", features=FEATURE_PRESETS[label])
        q = BIG_Q
        ctx = backend.make_modulus(q)
        for _ in range(8):
            a, b, blk_a, blk_b = _blocks(rng, backend, q)
            assert backend.block_values(backend.mulmod(blk_a, blk_b, ctx)) == [
                (x * y) % q for x, y in zip(a, b)
            ]
            assert backend.block_values(backend.addmod(blk_a, blk_b, ctx)) == [
                (x + y) % q for x, y in zip(a, b)
            ]
            assert backend.block_values(backend.submod(blk_a, blk_b, ctx)) == [
                (x - y) % q for x, y in zip(a, b)
            ]

    def test_labels(self):
        assert MqxFeatures().label == "+M,C"
        assert FEATURE_PRESETS["+Mh,C"].label == "+Mh,C"
        assert FEATURE_PRESETS["+M,C,P"].label == "+M,C,P"

    def test_invalid_combinations_rejected(self):
        with pytest.raises(BackendError):
            MqxFeatures(wide_mul=True, mulhi_only=True)
        with pytest.raises(BackendError):
            MqxFeatures(wide_mul=True, carry=False, predication=True)
        with pytest.raises(BackendError):
            MqxFeatures(wide_mul=False, carry=False)


class TestBlockIO:
    def test_wrong_block_size_rejected(self, backend):
        with pytest.raises(BackendError):
            backend.load_block([0] * (backend.lanes + 1))

    def test_split_dw_words(self):
        his, los = split_dw_words([(3 << 64) | 5, 7])
        assert his == [3, 0]
        assert los == [5, 7]

    def test_split_rejects_129_bits(self):
        with pytest.raises(BackendError):
            split_dw_words([1 << 128])

    def test_store_returns_loaded_values(self, backend, rng):
        values = random_residues(rng, BIG_Q, backend.lanes)
        block = backend.load_block(values)
        assert backend.store_block(block) == values
        assert backend.block_values(block) == values

    def test_interleave_order(self, backend, rng):
        even_vals = random_residues(rng, BIG_Q, backend.lanes)
        odd_vals = random_residues(rng, BIG_Q, backend.lanes)
        even = backend.load_block(even_vals)
        odd = backend.load_block(odd_vals)
        out0, out1 = backend.interleave(even, odd)
        combined = backend.block_values(out0) + backend.block_values(out1)
        expected = []
        for e, o in zip(even_vals, odd_vals):
            expected.extend([e, o])
        assert combined == expected


class TestModulusContext:
    def test_bad_algorithm_rejected(self, backend):
        with pytest.raises(BackendError):
            backend.make_modulus(BIG_Q, algorithm="fft")

    def test_context_carries_barrett_state(self, backend):
        ctx = backend.make_modulus(MID_Q)
        assert ctx.q == MID_Q
        assert ctx.beta == MID_Q.bit_length()
        assert ctx.params.mu == (1 << (2 * ctx.beta)) // MID_Q


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_property_scalar_and_mqx_match_bigint(data):
    """Deep hypothesis pass on the cheapest and the headline backend."""
    q = data.draw(st.sampled_from(MODULI))
    name = data.draw(st.sampled_from(["scalar", "mqx"]))
    backend = get_backend(name)
    a = [data.draw(st.integers(min_value=0, max_value=q - 1)) for _ in range(backend.lanes)]
    b = [data.draw(st.integers(min_value=0, max_value=q - 1)) for _ in range(backend.lanes)]
    blk_a, blk_b = backend.load_block(a), backend.load_block(b)
    ctx = backend.make_modulus(q)
    assert backend.block_values(backend.addmod(blk_a, blk_b, ctx)) == [
        (x + y) % q for x, y in zip(a, b)
    ]
    assert backend.block_values(backend.submod(blk_a, blk_b, ctx)) == [
        (x - y) % q for x, y in zip(a, b)
    ]
    assert backend.block_values(backend.mulmod(blk_a, blk_b, ctx)) == [
        (x * y) % q for x, y in zip(a, b)
    ]
