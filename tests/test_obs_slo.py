"""SLO tracker: window close math, burn rate, breach streaks, publication."""

import pytest

from repro.obs import session as obs_session
from repro.obs.slo import SloTracker, _percentile
from repro.obs.session import observing


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


@pytest.fixture(autouse=True)
def _obs_disabled():
    obs_session.disable()
    yield
    obs_session.disable()


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            SloTracker(window_s=0.0)
        with pytest.raises(ValueError):
            SloTracker(burn_windows=0)
        with pytest.raises(ValueError):
            SloTracker(error_budget=0.0)
        with pytest.raises(ValueError):
            SloTracker(error_budget=1.5)


class TestPercentile:
    def test_nearest_rank(self):
        values = [float(i) for i in range(1, 101)]
        assert _percentile(values, 99.0) == 99.0
        assert _percentile(values, 50.0) == 51.0
        assert _percentile([7.0], 99.0) == 7.0


class TestWindows:
    def test_window_closes_on_index_change(self):
        clock = FakeClock(0.5)
        tracker = SloTracker(slo_p99_ms=100.0, window_s=1.0, clock=clock)
        for latency_ms in (10.0, 20.0, 30.0):
            tracker.record("polymul", "t0", latency_ms / 1e3)
        assert tracker.window_p99_ms("polymul") is None  # still open
        clock.advance(1.0)
        tracker.record("polymul", "t0", 0.040)  # rolls the window
        assert tracker.window_p99_ms("polymul") == 30.0
        assert tracker.tenant_p99_ms("t0") == 30.0
        assert tracker.tenant_p99_ms("missing") is None

    def test_violations_and_burn_rate(self):
        clock = FakeClock(0.5)
        tracker = SloTracker(
            slo_p99_ms=100.0, window_s=1.0, burn_windows=3,
            error_budget=0.1, clock=clock,
        )
        # Window 0: 8 in-budget + 2 over-target = 20% violations.
        for _ in range(8):
            tracker.record("ntt", "t0", 0.010)
        for _ in range(2):
            tracker.record("ntt", "t0", 0.500)
        clock.advance(1.0)
        tracker.record("ntt", "t0", 0.010)  # closes window 0
        # 0.2 violation fraction / 0.1 budget = 2x burn.
        assert tracker.burn_rate("ntt") == pytest.approx(2.0)
        assert tracker.burn_rate("unknown") == 0.0

    def test_failures_count_as_violations_not_samples(self):
        clock = FakeClock(0.5)
        tracker = SloTracker(slo_p99_ms=100.0, window_s=1.0, clock=clock)
        tracker.record("ntt", "t0", 0.010)
        tracker.record("ntt", "t0", 99.0, ok=False)  # huge, but excluded
        clock.advance(1.0)
        tracker.record("ntt", "t0", 0.010)
        # The failure's latency never reaches the percentile...
        assert tracker.window_p99_ms("ntt") == 10.0
        # ...but it still burned budget: 1 violation / 2 requests / 0.01.
        assert tracker.burn_rate("ntt") == pytest.approx(50.0)

    def test_breach_streak_tracks_consecutive_windows(self):
        clock = FakeClock(0.5)
        tracker = SloTracker(
            slo_p99_ms=50.0, window_s=1.0, burn_windows=3, clock=clock
        )
        for _ in range(3):  # three breached windows in a row
            tracker.record("ntt", "t0", 0.200)
            clock.advance(1.0)
        tracker.record("ntt", "t0", 0.200)
        assert tracker.breach_streak("ntt") == 3
        clock.advance(1.0)
        tracker.record("ntt", "t0", 0.001)  # closes a 4th breached window
        assert tracker.breach_streak("ntt") == 4
        clock.advance(1.0)
        tracker.record("ntt", "t0", 0.001)  # closes a healthy window
        assert tracker.breach_streak("ntt") == 0

    def test_no_slo_means_no_breaches(self):
        clock = FakeClock(0.5)
        tracker = SloTracker(slo_p99_ms=None, window_s=1.0, clock=clock)
        tracker.record("ntt", "t0", 5.0)
        clock.advance(1.0)
        tracker.record("ntt", "t0", 5.0)
        assert tracker.breach_streak("ntt") == 0
        assert tracker.burn_rate("ntt") == 0.0


class TestPublication:
    def test_gauges_and_counters_published_under_session(self):
        clock = FakeClock(0.5)
        tracker = SloTracker(
            slo_p99_ms=50.0, window_s=1.0, burn_windows=3,
            error_budget=0.5, clock=clock,
        )
        with observing() as session:
            tracker.record("ntt", "t0", 0.200)  # violation
            clock.advance(1.0)
            tracker.record("ntt", "t0", 0.001)
            snap = session.metrics.snapshot()
        assert snap["serve.slo.p99_ms.ntt"]["value"] == pytest.approx(200.0)
        assert snap["serve.slo.target_ms.ntt"]["value"] == 50.0
        assert snap["serve.slo.burn_rate.ntt"]["value"] == pytest.approx(2.0)
        assert snap["serve.slo.breach_windows.ntt"]["value"] == 1.0
        assert snap["serve.slo.violations"]["value"] == 1
        assert snap["serve.slo.violations.ntt"]["value"] == 1
        assert snap["serve.slo.violations.tenant.t0"]["value"] == 1

    def test_no_session_publication_is_noop(self):
        clock = FakeClock(0.5)
        tracker = SloTracker(slo_p99_ms=50.0, window_s=1.0, clock=clock)
        tracker.record("ntt", "t0", 0.200)
        clock.advance(1.0)
        tracker.record("ntt", "t0", 0.001)  # closes + would publish
        assert tracker.window_p99_ms("ntt") == 200.0  # tracking still works

    def test_breach_streak_raises_flight_note(self):
        from repro.obs.flight import FlightRecorder

        clock = FakeClock(0.5)
        tracker = SloTracker(
            slo_p99_ms=50.0, window_s=1.0, burn_windows=2, clock=clock
        )
        with observing() as session:
            rec = FlightRecorder(clock=clock)
            rec.attach(session)
            for _ in range(2):
                tracker.record("ntt", "t0", 0.200)
                clock.advance(1.0)
            tracker.record("ntt", "t0", 0.200)  # closes 2nd breached window
            assert rec._pending is not None
            assert rec._pending["rule"] == "slo_burn"
            assert rec._pending["detail"]["op"] == "ntt"
            rec.detach()
