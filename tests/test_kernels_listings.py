"""Fidelity tests for the verbatim ports of Table 1 and Listings 1-3."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.trace import tracing
from repro.isa.types import Mask, Vec
from repro.kernels.listings import (
    listing1_addmod128,
    listing2_addmod128,
    listing3_addmod128,
    table1_adc_avx512,
    table1_adc_mqx,
    table1_adc_scalar,
)

from tests.conftest import BIG_Q, MID_Q

MASK64 = (1 << 64) - 1
U64 = st.integers(min_value=0, max_value=MASK64)
# The comparison-based carry pattern's validity domain: high words of
# reduced 124-bit residues (see repro.kernels.listings docstring).
HIGH_WORD = st.integers(min_value=0, max_value=(1 << 60) - 1)


class TestTable1:
    @given(HIGH_WORD, HIGH_WORD, st.booleans())
    def test_scalar_adc_semantics(self, a, b, ci):
        value, carry = table1_adc_scalar(a, b, ci)
        wide = a + b + (1 if ci else 0)
        assert value == wide & MASK64
        assert carry == (wide >> 64 != 0)

    def test_comparison_pattern_counterexample_documented(self):
        """The printed pattern misses the carry at (max, max, ci=1).

        This is outside the kernels' domain (high words of reduced
        residues are < 2^60) but worth pinning down: the flag-based ADC
        and MQX instructions are correct here while the comparison-based
        C pattern is not.
        """
        value, carry = table1_adc_scalar(MASK64, MASK64, True)
        assert value == MASK64
        assert carry is False  # the pattern's known blind spot

        from repro.isa import mqx
        from repro.isa import scalar as s

        _, true_carry = s.adc64(MASK64, MASK64, 1)
        assert int(true_carry) == 1
        _, mqx_carry = mqx.mm512_adc_epi64(
            Vec([MASK64] * 8), Vec([MASK64] * 8), Mask.ones(8)
        )
        assert mqx_carry.value == 0xFF

    @given(
        st.lists(HIGH_WORD, min_size=8, max_size=8),
        st.lists(HIGH_WORD, min_size=8, max_size=8),
        st.integers(min_value=0, max_value=255),
    )
    def test_three_columns_agree(self, a, b, ci_bits):
        ci = Mask(ci_bits, 8)
        va, vb = Vec(a), Vec(b)
        avx_sum, avx_co = table1_adc_avx512(va, vb, ci)
        mqx_sum, mqx_co = table1_adc_mqx(va, vb, ci)
        assert avx_sum == mqx_sum
        assert avx_co == mqx_co
        for i in range(8):
            s_val, s_co = table1_adc_scalar(a[i], b[i], ci.bit(i))
            assert avx_sum.lane(i) == s_val
            assert avx_co.bit(i) == s_co

    def test_instruction_counts_match_table1(self):
        a, b = Vec([1] * 8), Vec([2] * 8)
        ci = Mask(0b10101010, 8)
        with tracing() as t_avx:
            table1_adc_avx512(a, b, ci)
        with tracing() as t_mqx:
            table1_adc_mqx(a, b, ci)
        # The paper's Table 1: six AVX-512 instructions vs one MQX.
        assert len(t_avx) == 6
        assert len(t_mqx) == 1
        with tracing() as t_scalar:
            table1_adc_scalar(1, 2, True)
        # Scalar C source: 2 adds, 2 compares, 1 or (the compiled form is
        # a single ADC, which the ScalarBackend uses instead).
        assert len(t_scalar) == 5


class TestListing1:
    @given(st.data())
    @settings(max_examples=200)
    def test_matches_modular_addition(self, data):
        q = data.draw(st.sampled_from([MID_Q, BIG_Q]))
        a = data.draw(st.integers(min_value=0, max_value=q - 1))
        b = data.draw(st.integers(min_value=0, max_value=q - 1))
        assert listing1_addmod128(a, b, q) == (a + b) % q

    def test_boundary_sums(self):
        q = BIG_Q
        assert listing1_addmod128(q - 1, q - 1, q) == q - 2
        assert listing1_addmod128(q - 1, 1, q) == 0
        assert listing1_addmod128(0, 0, q) == 0

    def test_uses_only_64bit_operations(self):
        with tracing() as t:
            listing1_addmod128(BIG_Q - 1, BIG_Q - 2, BIG_Q)
        assert all(e.op.endswith("64") or e.op == "logic8" for e in t.entries)


def _split(values):
    return Vec([v >> 64 for v in values]), Vec([v & MASK64 for v in values])


class TestListings2And3:
    @given(st.data())
    @settings(max_examples=100)
    def test_both_match_reference(self, data):
        q = data.draw(st.sampled_from([MID_Q, BIG_Q]))
        a = [data.draw(st.integers(min_value=0, max_value=q - 1)) for _ in range(8)]
        b = [data.draw(st.integers(min_value=0, max_value=q - 1)) for _ in range(8)]
        ah, al = _split(a)
        bh, bl = _split(b)
        mh, ml = _split([q] * 8)
        for impl in (listing2_addmod128, listing3_addmod128):
            ch, cl = impl(ah, al, bh, bl, mh, ml)
            for i in range(8):
                assert (ch.lane(i) << 64) | cl.lane(i) == (a[i] + b[i]) % q

    def test_mqx_listing_is_much_shorter(self):
        rng = random.Random(5)
        a = [rng.randrange(BIG_Q) for _ in range(8)]
        b = [rng.randrange(BIG_Q) for _ in range(8)]
        ah, al = _split(a)
        bh, bl = _split(b)
        mh, ml = _split([BIG_Q] * 8)
        with tracing() as t2:
            listing2_addmod128(ah, al, bh, bl, mh, ml)
        with tracing() as t3:
            listing3_addmod128(ah, al, bh, bl, mh, ml)
        # Listing 2 is ~19 instructions; Listing 3 is 8.
        assert len(t2) >= 2 * len(t3)
        assert t3.count("vpadcq_zmm") == 2
        assert t3.count("vpsbbq_zmm") == 2
