"""Smoke tests: every shipped example must run cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )


class TestExamples:
    def test_quickstart(self):
        result = _run("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "NTT roundtrip OK" in result.stdout
        assert "modeled NTT runtime" in result.stdout

    def test_fhe_rns_pipeline(self):
        result = _run("fhe_rns_pipeline.py")
        assert result.returncode == 0, result.stderr
        assert "verified via CRT" in result.stdout
        assert "near-linear" in result.stdout

    def test_isa_extension_study(self):
        result = _run("isa_extension_study.py")
        assert result.returncode == 0, result.stderr
        assert "PISA validation" in result.stdout
        assert "Resource pressure" in result.stdout
        assert "co-design conclusions" in result.stdout

    def test_roofline_analysis(self):
        result = _run("roofline_analysis.py")
        assert result.returncode == 0, result.stderr
        assert "MQX speed-of-light" in result.stdout
        assert "custom CPU" in result.stdout

    def test_codegen_artifact(self, tmp_path):
        result = _run("codegen_artifact.py", str(tmp_path / "gen"))
        assert result.returncode == 0, result.stderr
        assert (tmp_path / "gen" / "mqx.h").exists()
        assert "addmod128_mqx.c" in result.stdout
