"""Tests for the negacyclic NTT (the RLWE/FHE ring)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arith.primes import find_ntt_prime
from repro.errors import NttParameterError
from repro.kernels import get_backend
from repro.ntt.negacyclic import NegacyclicNtt, negacyclic_polymul
from repro.ntt.reference import negacyclic_schoolbook_polymul

from tests.conftest import ALL_BACKEND_NAMES, BIG_Q, MID_Q, random_residues


class TestMultiply:
    @pytest.mark.parametrize("name", ALL_BACKEND_NAMES)
    def test_matches_schoolbook(self, name, rng):
        q = BIG_Q
        backend = get_backend(name)
        f = random_residues(rng, q, 32)
        g = random_residues(rng, q, 32)
        assert negacyclic_polymul(f, g, q, backend) == (
            negacyclic_schoolbook_polymul(f, g, q)
        )

    def test_x_to_n_is_minus_one(self):
        """x^(n/2) * x^(n/2) = x^n = -1 in the negacyclic ring."""
        q = MID_Q
        n = 16
        backend = get_backend("scalar")
        half = [0] * n
        half[n // 2] = 1
        out = negacyclic_polymul(half, half, q, backend)
        assert out == [q - 1] + [0] * (n - 1)

    def test_multiplicative_identity(self, rng):
        q = BIG_Q
        backend = get_backend("mqx")
        f = random_residues(rng, q, 16)
        one = [1] + [0] * 15
        assert negacyclic_polymul(f, one, q, backend) == f

    @given(st.data())
    @settings(max_examples=20, deadline=None)
    def test_commutativity(self, data):
        q = MID_Q
        backend = get_backend("scalar")
        n = 8
        f = [data.draw(st.integers(min_value=0, max_value=q - 1)) for _ in range(n)]
        g = [data.draw(st.integers(min_value=0, max_value=q - 1)) for _ in range(n)]
        plan = NegacyclicNtt(n, q, backend)
        assert plan.multiply(f, g) == plan.multiply(g, f)

    def test_karatsuba_variant(self, rng):
        q = BIG_Q
        backend = get_backend("avx512")
        f = random_residues(rng, q, 16)
        g = random_residues(rng, q, 16)
        assert negacyclic_polymul(f, g, q, backend, algorithm="karatsuba") == (
            negacyclic_schoolbook_polymul(f, g, q)
        )


class TestTransformPair:
    def test_forward_inverse_roundtrip(self, backend, rng):
        q = BIG_Q
        n = 4 * backend.lanes
        plan = NegacyclicNtt(n, q, backend)
        f = random_residues(rng, q, n)
        assert plan.inverse(plan.forward(f)) == f

    def test_forward_is_pointwise_homomorphic(self, rng):
        """forward(f*g) point-wise equals forward(f) . forward(g)."""
        q = MID_Q
        backend = get_backend("scalar")
        n = 8
        plan = NegacyclicNtt(n, q, backend)
        f = random_residues(rng, q, n)
        g = random_residues(rng, q, n)
        fa, ga = plan.forward(f), plan.forward(g)
        product = negacyclic_schoolbook_polymul(f, g, q)
        pa = plan.forward(product)
        assert pa == [a * b % q for a, b in zip(fa, ga)]


class TestValidation:
    def test_requires_2n_dividing_q_minus_1(self):
        q = find_ntt_prime(60, 16)  # supports order 16 only
        NegacyclicNtt(8, q, get_backend("scalar"))  # 2n = 16 OK
        with pytest.raises(NttParameterError):
            NegacyclicNtt(16, q, get_backend("scalar"))  # 2n = 32 not

    def test_rejects_bad_psi(self):
        with pytest.raises(NttParameterError):
            NegacyclicNtt(8, MID_Q, get_backend("scalar"), psi=1)

    def test_rejects_wrong_lengths(self):
        plan = NegacyclicNtt(16, MID_Q, get_backend("scalar"))
        with pytest.raises(NttParameterError):
            plan.forward([0] * 8)
        with pytest.raises(NttParameterError):
            negacyclic_polymul([1, 2], [1], MID_Q, get_backend("scalar"))
