"""Setup shim for environments without the ``wheel`` package.

Allows ``pip install -e . --no-build-isolation --no-use-pep517`` (legacy
editable install) when PEP 660 editable wheels are unavailable offline.
All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
