"""Benchmark: fast (NumPy) engine vs the faithful scalar backend.

Measures wall-clock for the workloads the tentpole targets — a
4096-point forward NTT and the four 2^12-element BLAS operations — on
both engines, verifies the outputs are identical, records everything
(including the speedups) into ``BENCH_fast.json`` via the
``repro.obs.snapshot`` store, and fails if the NTT speedup drops below
the CI floor of 10x.

A second section races the fast engine's two arithmetic substrates —
the 52-bit redundant-limb r52 path against the double-word schoolbook
path — at a two-limb (100-bit) prime, with interleaved timing rounds
(see ``_duel``) so background load cannot skew the ratio; the r52 NTT
speedup is gated at ``--min-r52-speedup`` (default 1.5x).

Runs two ways:

* ``python benchmarks/bench_fast.py [--snapshot PATH] [--min-speedup X]``
  — the CI smoke (exits non-zero below the floor);
* ``pytest benchmarks/bench_fast.py`` — the same checks as a test.

The faithful side is timed with a *reduced* iteration count (it is the
~6-second interpreted path the fast engine exists to replace); the fast
side takes the best of several rounds, matching the paper's
best-of-rounds convention for wall-clock numbers.
"""

from __future__ import annotations

import argparse
import random
import sys
import time
from pathlib import Path

from repro.arith.primes import find_ntt_prime
from repro.blas.ops import BLAS_OPERATIONS, BlasPlan
from repro.kernels import get_backend
from repro.ntt.simd import SimdNtt
from repro.obs.snapshot import SnapshotStore

#: Default snapshot file for fast-engine numbers, at the repo root.
DEFAULT_SNAPSHOT = Path(__file__).resolve().parent.parent / "BENCH_fast.json"

#: CI floor for the 4096-point NTT fast/faithful speedup.
MIN_NTT_SPEEDUP = 10.0

#: CI floor for the r52-vs-schoolbook 4096-point NTT speedup.
MIN_R52_NTT_SPEEDUP = 1.5

NTT_N = 4096
BLAS_N = 1 << 12

#: Modulus width for the r52 section: a two-limb prime well inside the
#: substrate's auto range (the headline 124-bit prime above is a
#: three-limb dw-auto width, so it exercises the other substrate).
R52_BITS = 100


def _best_of(fn, rounds: int) -> float:
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _duel(fn_a, fn_b, rounds: int):
    """Best-of timing for two contenders with *interleaved* rounds.

    Alternating A/B inside every round exposes both sides to the same
    machine-load window, so the recorded ratio is robust against the
    background noise that sequential best-of runs can fold entirely
    into one contender.
    """
    best_a = best_b = float("inf")
    out_a = out_b = None
    for _ in range(rounds):
        start = time.perf_counter()
        out_a = fn_a()
        best_a = min(best_a, time.perf_counter() - start)
        start = time.perf_counter()
        out_b = fn_b()
        best_b = min(best_b, time.perf_counter() - start)
    return best_a, best_b, out_a, out_b


def run(fast_rounds: int = 3) -> dict:
    """Time both engines on the target workloads; return the value dict."""
    q = find_ntt_prime(124, 1 << 20)
    rng = random.Random(2025)
    backend = get_backend("scalar")
    values = {}

    # --- 4096-point forward NTT --------------------------------------
    data = [rng.randrange(q) for _ in range(NTT_N)]
    faithful_plan = SimdNtt(NTT_N, q, backend)
    fast_plan = SimdNtt(NTT_N, q, backend, engine="fast")
    fast_plan.forward(data)  # warm the twiddle caches before timing
    fast_s, fast_out = _best_of(lambda: fast_plan.forward(data), fast_rounds)
    faithful_s, faithful_out = _best_of(
        lambda: faithful_plan.forward(data), 1
    )
    if fast_out != faithful_out:
        raise AssertionError("fast and faithful NTT outputs differ")
    values["fast.ntt4096.fast_s"] = fast_s
    values["fast.ntt4096.faithful_s"] = faithful_s
    values["fast.ntt4096.speedup"] = faithful_s / fast_s

    # --- the four 2^12-element BLAS operations -----------------------
    # Two fast timings per op: the list API (pays Python int <-> limb
    # conversion at the call boundary) and the array-resident path
    # (operands already packed as limb arrays, as the RNS pipeline holds
    # them between operations — this is the engine's amortized cost).
    from repro.fast.limbs import limbs_from_ints, limbs_to_ints

    x = [rng.randrange(q) for _ in range(BLAS_N)]
    y = [rng.randrange(q) for _ in range(BLAS_N)]
    a = rng.randrange(q)
    xa, ya = limbs_from_ints(x), limbs_from_ints(y)
    faithful_blas = BlasPlan(q, backend)
    fast_blas = BlasPlan(q, backend, engine="fast")
    resident = fast_blas.fast_plan
    for op in BLAS_OPERATIONS:
        if op == "axpy":
            fast_fn = lambda: fast_blas.axpy(a, x, y)
            resident_fn = lambda: resident.axpy(a, xa, ya)
            faithful_fn = lambda: faithful_blas.axpy(a, x, y)
        else:
            fast_fn = lambda: getattr(fast_blas, op)(x, y)
            resident_fn = lambda: getattr(resident, op)(xa, ya)
            faithful_fn = lambda: getattr(faithful_blas, op)(x, y)
        fast_s, fast_out = _best_of(fast_fn, fast_rounds)
        resident_s, resident_out = _best_of(resident_fn, fast_rounds)
        faithful_s, faithful_out = _best_of(faithful_fn, 1)
        if fast_out != faithful_out:
            raise AssertionError(f"fast and faithful {op} outputs differ")
        if limbs_to_ints(resident_out) != faithful_out:
            raise AssertionError(f"resident and faithful {op} outputs differ")
        values[f"fast.blas4096.{op}.fast_s"] = fast_s
        values[f"fast.blas4096.{op}.resident_s"] = resident_s
        values[f"fast.blas4096.{op}.faithful_s"] = faithful_s
        values[f"fast.blas4096.{op}.speedup"] = faithful_s / fast_s
        values[f"fast.blas4096.{op}.resident_speedup"] = faithful_s / resident_s

    values.update(run_r52(fast_rounds=max(fast_rounds, 5)))
    return values


def run_r52(fast_rounds: int = 5) -> dict:
    """Time the r52 substrate against the dw schoolbook path.

    Both contenders are the *fast engine* — this section measures what
    the redundant-limb substrate buys over the existing double-word
    arithmetic at a two-limb width, on the same three workloads the
    tentpole targets: the 4096-point NTT, resident point-wise multiply
    and resident ``axpy``. Every pair is cross-checked bit-exact before
    the timings are recorded.
    """
    from repro.fast.blas import FastBlasPlan
    from repro.fast.limbs import limbs_from_ints, r52_join, r52_split
    from repro.fast.modular import FastModulus
    from repro.fast.ntt import FastNtt

    q = find_ntt_prime(R52_BITS, 1 << 20)
    rng = random.Random(2026)
    values = {}

    # --- 4096-point forward NTT (Harvey-lazy stages on r52) ----------
    data = limbs_from_ints([rng.randrange(q) for _ in range(NTT_N)])
    ntt_dw = FastNtt(NTT_N, q, mode="dw")
    ntt_r52 = FastNtt(NTT_N, q, mode="r52")
    ntt_dw.forward(data)  # warm twiddle + Shoup caches before timing
    ntt_r52.forward(data)
    dw_s, r52_s, dw_out, r52_out = _duel(
        lambda: ntt_dw.forward(data), lambda: ntt_r52.forward(data),
        fast_rounds,
    )
    if (dw_out != r52_out).any():
        raise AssertionError("dw and r52 NTT outputs differ")
    values["fast.r52.ntt4096.dw_s"] = dw_s
    values["fast.r52.ntt4096.r52_s"] = r52_s
    values["fast.r52.ntt4096.speedup"] = dw_s / r52_s

    x = limbs_from_ints([rng.randrange(q) for _ in range(BLAS_N)])
    y = limbs_from_ints([rng.randrange(q) for _ in range(BLAS_N)])
    a = rng.randrange(q)
    mod_dw = FastModulus.get(q, "dw")
    mod_r52 = FastModulus.get(q, "r52")
    sub = mod_r52.r52

    # --- resident vector_mul: each substrate on its native layout ----
    # The dw side's resident form is the (..., 2) limb array; the r52
    # side's resident form is its 52-bit planes (what the NTT holds
    # between stages). The repack cost a mixed pipeline would pay at
    # the boundary is recorded separately as ``boundary_s``.
    xp, yp = r52_split(x, sub.limbs), r52_split(y, sub.limbs)
    dw_s, r52_s, dw_out, r52_out = _duel(
        lambda: mod_dw.mulmod(x, y), lambda: sub.mulmod(xp, yp), fast_rounds
    )
    if (dw_out != r52_join(r52_out)).any():
        raise AssertionError("dw and r52 vector_mul outputs differ")
    boundary_s, _ = _best_of(lambda: mod_r52.mulmod(x, y), fast_rounds)
    values["fast.r52.blas4096.vector_mul.dw_s"] = dw_s
    values["fast.r52.blas4096.vector_mul.r52_s"] = r52_s
    values["fast.r52.blas4096.vector_mul.boundary_s"] = boundary_s
    values["fast.r52.blas4096.vector_mul.speedup"] = dw_s / r52_s

    # --- resident axpy (runtime Shoup constant on the r52 side) ------
    plan_dw = FastBlasPlan(q, mode="dw")
    plan_r52 = FastBlasPlan(q, mode="r52")
    dw_s, r52_s, dw_out, r52_out = _duel(
        lambda: plan_dw.axpy(a, x, y), lambda: plan_r52.axpy(a, x, y),
        fast_rounds,
    )
    if (dw_out != r52_out).any():
        raise AssertionError("dw and r52 axpy outputs differ")
    values["fast.r52.blas4096.axpy.dw_s"] = dw_s
    values["fast.r52.blas4096.axpy.r52_s"] = r52_s
    values["fast.r52.blas4096.axpy.speedup"] = dw_s / r52_s
    return values


def record(values: dict, snapshot_path=DEFAULT_SNAPSHOT) -> None:
    """Append the measurements to the fast-engine snapshot history."""
    SnapshotStore(snapshot_path).record(values, label="bench_fast")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--snapshot", type=Path, default=DEFAULT_SNAPSHOT)
    parser.add_argument("--min-speedup", type=float, default=MIN_NTT_SPEEDUP)
    parser.add_argument(
        "--min-r52-speedup", type=float, default=MIN_R52_NTT_SPEEDUP,
        help="floor for the r52-vs-schoolbook 4096-point NTT speedup",
    )
    parser.add_argument("--rounds", type=int, default=3)
    args = parser.parse_args(argv)

    values = run(fast_rounds=args.rounds)
    record(values, args.snapshot)

    ntt_speedup = values["fast.ntt4096.speedup"]
    print(f"4096-point NTT: faithful {values['fast.ntt4096.faithful_s']:.3f}s"
          f"  fast {values['fast.ntt4096.fast_s'] * 1e3:.2f}ms"
          f"  speedup {ntt_speedup:.0f}x")
    for op in BLAS_OPERATIONS:
        print(f"{BLAS_N}-element {op}: "
              f"faithful {values[f'fast.blas4096.{op}.faithful_s'] * 1e3:.1f}ms"
              f"  fast {values[f'fast.blas4096.{op}.fast_s'] * 1e6:.0f}us"
              f" ({values[f'fast.blas4096.{op}.speedup']:.0f}x)"
              f"  resident {values[f'fast.blas4096.{op}.resident_s'] * 1e6:.0f}us"
              f" ({values[f'fast.blas4096.{op}.resident_speedup']:.0f}x)")
    r52_ntt = values["fast.r52.ntt4096.speedup"]
    print(f"r52 vs dw @ {R52_BITS}-bit prime: "
          f"ntt4096 {r52_ntt:.2f}x"
          f"  vector_mul {values['fast.r52.blas4096.vector_mul.speedup']:.2f}x"
          f"  axpy {values['fast.r52.blas4096.axpy.speedup']:.2f}x")
    print(f"snapshot recorded to {args.snapshot}")

    if ntt_speedup < args.min_speedup:
        print(f"FAIL: NTT speedup {ntt_speedup:.1f}x is below the "
              f"{args.min_speedup:.0f}x floor", file=sys.stderr)
        return 1
    if r52_ntt < args.min_r52_speedup:
        print(f"FAIL: r52 NTT speedup {r52_ntt:.2f}x is below the "
              f"{args.min_r52_speedup:.1f}x floor", file=sys.stderr)
        return 1
    return 0


def test_fast_engine_speedup(tmp_path):
    """Pytest form of the CI gate (isolated snapshot file)."""
    values = run(fast_rounds=3)
    record(values, tmp_path / "BENCH_fast.json")
    assert values["fast.ntt4096.speedup"] >= MIN_NTT_SPEEDUP
    for op in BLAS_OPERATIONS:
        assert values[f"fast.blas4096.{op}.speedup"] > 1.0
        assert values[f"fast.blas4096.{op}.resident_speedup"] > 1.0
    assert values["fast.r52.ntt4096.speedup"] >= MIN_R52_NTT_SPEEDUP
    assert values["fast.r52.blas4096.vector_mul.speedup"] > 1.0
    assert values["fast.r52.blas4096.axpy.speedup"] > 1.0


if __name__ == "__main__":
    sys.exit(main())
