"""Benchmark: Figure 7 (speed-of-light vs published accelerators)."""

import pytest

from repro.experiments import figure7
from repro.roofline.compare import average_speedup, figure7_comparison


@pytest.mark.parametrize("vendor", ["intel", "amd"])
def test_figure7(report, vendor):
    report(lambda: figure7.run(vendor))
    rows = figure7_comparison(vendor)
    rpu = average_speedup(rows, "RPU")
    if vendor == "amd":
        # Paper: 2.5x over RPU, 2.9x over FPMM, 1.7x over MoMA.
        assert rpu == pytest.approx(2.5, abs=0.05)
        assert average_speedup(rows, "FPMM") == pytest.approx(2.9, abs=0.05)
        assert average_speedup(rows, "MoMA") == pytest.approx(1.7, abs=0.05)
    else:
        # Paper: 1.3x over RPU, parity with FPMM, 1.4x behind MoMA.
        assert 0.8 < rpu < 2.0
        assert average_speedup(rows, "MoMA") < 1.0
    assert average_speedup(rows, "OpenFHE (32-core)") > 500
