"""Benchmark: Table 1 (addition with carry across the three ISAs).

Also times the raw simulated kernels themselves, giving a feel for the
ISA simulator's own throughput.
"""

import random

from repro.experiments import table1
from repro.isa.types import Mask, Vec
from repro.kernels.listings import table1_adc_avx512, table1_adc_mqx


def test_table1(report):
    result = report(table1.run)
    counts = dict(zip(result.column("implementation"), result.column("instructions")))
    assert counts["AVX-512"] == 6
    assert counts["MQX"] == 1


def test_simulated_avx512_adc_throughput(benchmark):
    rng = random.Random(1)
    a = Vec([rng.randrange(1 << 64) for _ in range(8)])
    b = Vec([rng.randrange(1 << 64) for _ in range(8)])
    ci = Mask(0b10101010, 8)
    benchmark(table1_adc_avx512, a, b, ci)


def test_simulated_mqx_adc_throughput(benchmark):
    rng = random.Random(2)
    a = Vec([rng.randrange(1 << 64) for _ in range(8)])
    b = Vec([rng.randrange(1 << 64) for _ in range(8)])
    ci = Mask(0b01010101, 8)
    benchmark(table1_adc_mqx, a, b, ci)
