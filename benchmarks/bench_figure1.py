"""Benchmark: regenerate Figure 1 (headline NTT comparison)."""

from repro.experiments import figure1


def test_figure1(report):
    result = report(figure1.run)
    runtimes = dict(zip(result.column("implementation"), result.column("us per NTT")))

    # Shape: MQX < AVX-512 < {scalar, AVX2}; single-core AVX-512 beats the
    # 32-core OpenFHE baseline; SOL-scaled MQX reaches the ASIC.
    assert runtimes["mqx (1 core EPYC 9654)"] < runtimes["avx512 (1 core EPYC 9654)"]
    assert (
        runtimes["avx512 (1 core EPYC 9654)"]
        < runtimes["OpenFHE (32-core EPYC 7502)"]
    )
    assert runtimes["MQX-SOL (192-core EPYC 9965S)"] <= runtimes["RPU (ASIC)"]
