"""Benchmark: the Shoup/Harvey precomputed-twiddle extension."""

from repro.experiments import extension_shoup


def test_extension_shoup(report):
    result = report(extension_shoup.run)
    speedups = [float(v) for v in result.column("speedup")]
    # Every backend on every CPU must gain, in the realistic 1.1x-2x band.
    assert all(1.1 < s < 2.0 for s in speedups)
