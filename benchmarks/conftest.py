"""Benchmark configuration.

Each benchmark regenerates one of the paper's tables/figures through the
full pipeline (ISA simulation -> trace -> machine model -> runtimes),
asserts the paper's shape claims on the result, and prints the regenerated
series (visible with ``pytest -s``; also written to EXPERIMENTS.md by
``python -m repro.experiments.runner``).

Every benchmarked regeneration also records its best round time into the
repository's perf-snapshot history (``BENCH_pipeline.json``, see
:mod:`repro.obs.snapshot`), so the wall-clock trajectory of the pipeline
accumulates across benchmark runs and ``python -m repro profile`` can
diff against it. Set ``REPRO_BENCH_SNAPSHOT=0`` to opt out.

The accumulated history is what ``python -m repro perfgate`` gates:
each merged snapshot carries a ``_meta`` provenance block (git SHA,
UTC timestamp, hostname; stamped by :class:`~repro.obs.snapshot.SnapshotStore`),
and the gate baselines every ``bench.<exp_id>.wall_s`` key against the
median of its recent history with MAD-scaled noise tolerance — run the
benchmarks a few times before expecting the gate to engage
(``min_runs``), see :mod:`repro.obs.trajectory`.
"""

import os
from pathlib import Path

import pytest

from repro.obs.snapshot import SnapshotStore

#: The repository-root snapshot file the benchmarks accumulate into.
SNAPSHOT_PATH = Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"


def _record_round(exp_id, benchmark):
    """Fold this benchmark's best round into the latest snapshot."""
    if os.environ.get("REPRO_BENCH_SNAPSHOT", "1") == "0":
        return
    try:
        seconds = float(benchmark.stats.stats.min)
    except (AttributeError, TypeError, ValueError):
        return  # pytest-benchmark disabled or stats unavailable
    SnapshotStore(SNAPSHOT_PATH).merge({f"bench.{exp_id}.wall_s": seconds})


def run_and_report(benchmark, fn):
    """Benchmark an experiment regeneration and echo its table."""
    result = benchmark.pedantic(fn, rounds=3, iterations=1, warmup_rounds=1)
    print()
    print(result.format_table())
    _record_round(result.exp_id, benchmark)
    return result


@pytest.fixture
def report(benchmark):
    """Fixture form of :func:`run_and_report`."""

    def _run(fn):
        return run_and_report(benchmark, fn)

    return _run
