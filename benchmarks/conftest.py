"""Benchmark configuration.

Each benchmark regenerates one of the paper's tables/figures through the
full pipeline (ISA simulation -> trace -> machine model -> runtimes),
asserts the paper's shape claims on the result, and prints the regenerated
series (visible with ``pytest -s``; also written to EXPERIMENTS.md by
``python -m repro.experiments.runner``).
"""

import pytest


def run_and_report(benchmark, fn):
    """Benchmark an experiment regeneration and echo its table."""
    result = benchmark.pedantic(fn, rounds=3, iterations=1, warmup_rounds=1)
    print()
    print(result.format_table())
    return result


@pytest.fixture
def report(benchmark):
    """Fixture form of :func:`run_and_report`."""

    def _run(fn):
        return run_and_report(benchmark, fn)

    return _run
