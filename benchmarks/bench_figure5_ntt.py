"""Benchmark: Figure 5 (NTT across sizes on both CPUs)."""

import pytest

from repro.experiments import figure5


@pytest.mark.parametrize("panel", ["a", "b"], ids=["intel", "amd"])
def test_figure5(report, panel):
    result = report(lambda: figure5.run(panel))

    series = {
        impl: [float(row[i + 1]) for row in result.rows]
        for i, impl in enumerate(result.headers[1:])
    }
    # Ordering at every size: MQX < AVX-512 < OpenFHE < GMP.
    for i in range(len(result.rows)):
        assert series["mqx"][i] < series["avx512"][i]
        assert series["avx512"][i] < series["openfhe"][i]
        assert series["openfhe"][i] < series["gmp"][i]

    # Aggregate gaps in the paper's decade (Section 5.4 / Section 8).
    avg = lambda xs: sum(xs) / len(xs)
    avx512_vs_openfhe = avg(
        [o / v for o, v in zip(series["openfhe"], series["avx512"])]
    )
    mqx_vs_openfhe = avg([o / v for o, v in zip(series["openfhe"], series["mqx"])])
    assert 15 < avx512_vs_openfhe < 60  # paper: 31.9x / 23.2x
    assert 50 < mqx_vs_openfhe < 160  # paper: 66.9x / 86.5x


def test_figure5_intel_l2_spill(report):
    """The paper's signature crossover: MQX degrades at 2^16 on Intel."""
    result = report(lambda: figure5.run("a"))
    logs = [int(v) for v in result.column("log2(n)")]
    mqx = dict(zip(logs, (float(v) for v in result.column("mqx"))))
    avx512 = dict(zip(logs, (float(v) for v in result.column("avx512"))))
    assert mqx[16] > 1.3 * mqx[15]  # MQX becomes memory-bound
    assert avx512[16] < 1.1 * avx512[15]  # AVX-512 stays compute-bound
