"""Benchmark: the AVX-512 IFMA52 tuning ladder."""

from repro.experiments import extension_ifma


def test_extension_ifma(report):
    result = report(extension_ifma.run)
    intel = [r for r in result.rows if r[0] == "intel_xeon_8352y"]
    speedups = [float(r[3]) for r in intel]
    # The ladder must be monotone on Intel and its top rung must reach
    # the paper's tuned regime (1.5x-3x over scalar; paper: 2.4x).
    assert speedups == sorted(speedups)
    assert 1.5 < speedups[-1] < 3.0
    # Every rung of the ladder beats the portable Barrett baseline.
    amd = [r for r in result.rows if r[0] == "amd_epyc_9654"]
    portable = float(amd[1][2])
    for row in amd[2:]:
        assert float(row[2]) < portable  # every rung beats portable Barrett
