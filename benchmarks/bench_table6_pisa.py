"""Benchmark: Table 6 (PISA validation on both CPUs)."""

from repro.experiments import table6


def test_table6(report):
    result = report(table6.run)
    errors = [float(cell.rstrip("%")) for cell in result.column("epsilon (ours)")]
    # The paper's claim: |epsilon| < 8% on all six cases.
    assert all(abs(e) < 8.0 for e in errors)
    # And the projection is never optimistic in the deterministic model.
    assert all(e <= 0.0 for e in errors)
