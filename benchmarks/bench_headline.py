"""Benchmark: the Abstract's headline aggregate speedups."""

from repro.experiments import headline


def test_headline(report):
    result = report(headline.run)
    values = dict(
        zip(result.column("metric"), (float(v) for v in result.column("ours")))
    )
    # Same decade as the paper's 38x / 62x / 77x / 104x / 35x headline.
    assert values["avx512 NTT vs best baseline"] > 15
    assert values["avx512 BLAS vs GMP"] > 15
    assert values["mqx NTT vs best baseline"] > 50
    assert values["mqx BLAS vs GMP"] > 50
    assert 10 < values["single-core MQX slowdown vs RPU (best case)"] < 120
