"""Benchmark: Figure 4 (BLAS operations on both CPUs)."""

import pytest

from repro.experiments import figure4


@pytest.mark.parametrize("panel", ["a", "b"], ids=["intel", "amd"])
def test_figure4(report, panel):
    result = report(lambda: figure4.run(panel))
    for row in result.rows:
        values = dict(zip(result.headers[1:], row[1:]))
        # Shape per operation: MQX fastest of ours, GMP far behind.
        assert values["mqx"] <= values["avx512"] <= values["avx2"]
        assert values["gmp"] > 5 * values["avx512"]

    # The aggregate GMP gap lands in the paper's decade (17-18x there).
    slowdowns = [
        dict(zip(result.headers[1:], row[1:]))["gmp"]
        / max(
            dict(zip(result.headers[1:], row[1:]))["scalar"],
            dict(zip(result.headers[1:], row[1:]))["avx2"],
        )
        for row in result.rows
    ]
    assert sum(slowdowns) / len(slowdowns) > 10
