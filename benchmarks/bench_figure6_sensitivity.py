"""Benchmark: Figure 6 (MQX component sensitivity on AMD EPYC)."""

from repro.experiments import figure6


def test_figure6(report):
    result = report(figure6.run)
    norm = dict(
        zip(result.column("config"), (float(v) for v in result.column("normalized")))
    )
    # Every component helps; the full extension compounds to ~3.7x.
    assert norm["+M"] < 1.0 and norm["+C"] < 1.0
    assert norm["+M"] < norm["+C"]  # widening multiply contributes more
    assert 2.5 < 1.0 / norm["+M,C"] < 4.5  # paper: 3.7x
    # Multiply-high is a cheap near-substitute; predication is marginal.
    assert norm["+Mh,C"] < 1.3 * norm["+M,C"]
    assert 1.0 <= norm["+M,C"] / norm["+M,C,P"] < 1.2
