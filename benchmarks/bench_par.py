"""Benchmark: sharded process-pool engine vs the in-process fast engine.

Times the workloads ``repro.par`` shards — a batched forward NTT, a
batched negacyclic polynomial multiply, and a fused multi-limb RNS ring
multiply — on both ``engine="fast"`` (sequential, in-process) and
``engine="parallel"`` (process pool), verifies the outputs are
bit-identical, and records everything into ``BENCH_par.json`` via the
``repro.obs.snapshot`` store.

Two families of keys:

* the original smoke keys (``par.ntt_batch`` / ``par.polymul_batch`` /
  ``par.rns_mul``, batch 8 at a 124-bit modulus) — correctness-gated
  always, speedup recorded;
* the **large-batch** keys (``par.ntt_large`` / ``par.polymul_large``,
  batch 32 at a 60-bit r52 modulus) — the arena + fused-shard sweet
  spot where the pool is expected to *win*; these are what an explicit
  ``--min-speedup`` floor gates. ``par.polymul_add`` additionally times
  the fused multiply-accumulate chain against its unfused two-dispatch
  form (``fusion_gain``), a win that does not need extra cores.

Correctness is the gate: outputs must match and no shard may have needed
a retry or an in-process fallback. Speedup is *recorded* but only
enforced when ``--min-speedup`` is passed, because the pool can only win
on a multi-core host (on one core the shards serialize and the shared
memory + coordination overhead makes the pool strictly slower; CI
containers are frequently single-core).

Runs two ways:

* ``python benchmarks/bench_par.py [--workers N] [--min-speedup X]``
  — the CI smoke (non-zero exit on mismatch, fallback, or a missed
  explicit speedup floor on the large-batch keys);
* ``pytest benchmarks/bench_par.py`` — the same correctness checks as
  a test.
"""

from __future__ import annotations

import argparse
import os
import random
import sys
import time
from pathlib import Path

from repro.arith.primes import find_ntt_prime
from repro.fast.blas import FastBlasPlan
from repro.fast.ntt import FastNegacyclic, FastNtt
from repro.kernels import get_backend
from repro.par import ParBlasPlan, ParNegacyclic, ParNtt, ParallelExecutor
from repro.obs.snapshot import SnapshotStore
from repro.rns.basis import RnsBasis
from repro.rns.poly import RnsPolynomialRing

#: Default snapshot file for pool-engine numbers, at the repo root.
DEFAULT_SNAPSHOT = Path(__file__).resolve().parent.parent / "BENCH_par.json"

NTT_N = 4096
BATCH = 8
#: Large-batch keys: enough rows that per-shard compute dominates the
#: pool's dispatch/collect envelope (the --min-speedup gate's target).
LARGE_BATCH = 32
RNS_LIMBS = 8
RNS_N = 1024

#: Keys an explicit --min-speedup floor gates (the rest are recorded).
GATED_KEYS = ("ntt_large", "polymul_large")


def _best_of(fn, rounds: int):
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def run(workers=None, rounds: int = 3) -> dict:
    """Time fast vs parallel on the sharded workloads; verify bit-exactness."""
    q = find_ntt_prime(124, 2 * NTT_N)
    rng = random.Random(2025)
    values = {"par.workers": float(workers or os.cpu_count() or 1)}

    with ParallelExecutor(workers=workers) as pool:
        # --- batched forward NTT (BATCH x NTT_N rows) ------------------
        batch = [[rng.randrange(q) for _ in range(NTT_N)] for _ in range(BATCH)]
        fast_plan = FastNtt(NTT_N, q)
        par_plan = ParNtt(NTT_N, q, executor=pool)
        par_plan.forward(batch)  # warm the pool + per-worker plan caches
        fast_s, fast_out = _best_of(lambda: fast_plan.forward(batch), rounds)
        par_s, par_out = _best_of(lambda: par_plan.forward(batch), rounds)
        if par_out != fast_out:
            raise AssertionError("parallel and fast NTT outputs differ")
        values["par.ntt_batch.fast_s"] = fast_s
        values["par.ntt_batch.par_s"] = par_s
        values["par.ntt_batch.speedup"] = fast_s / par_s

        # --- batched negacyclic polynomial multiply --------------------
        f = [[rng.randrange(q) for _ in range(NTT_N)] for _ in range(BATCH)]
        g = [[rng.randrange(q) for _ in range(NTT_N)] for _ in range(BATCH)]
        fast_neg = FastNegacyclic(NTT_N, q)
        par_neg = ParNegacyclic(NTT_N, q, executor=pool)
        par_neg.multiply(f, g)
        fast_s, fast_out = _best_of(lambda: fast_neg.multiply(f, g), rounds)
        par_s, par_out = _best_of(lambda: par_neg.multiply(f, g), rounds)
        if par_out != fast_out:
            raise AssertionError("parallel and fast polymul outputs differ")
        values["par.polymul_batch.fast_s"] = fast_s
        values["par.polymul_batch.par_s"] = par_s
        values["par.polymul_batch.speedup"] = fast_s / par_s

        # --- fused RNS ring multiply (RNS_LIMBS residue channels) ------
        backend = get_backend("mqx")
        basis = RnsBasis.generate(RNS_LIMBS, 60, 2 * RNS_N)
        ring_fast = RnsPolynomialRing(RNS_N, basis, backend, engine="fast")
        ring_par = RnsPolynomialRing(RNS_N, basis, backend, engine="parallel")
        coeffs_f = [rng.randrange(basis.modulus) for _ in range(RNS_N)]
        coeffs_g = [rng.randrange(basis.modulus) for _ in range(RNS_N)]
        pf_fast, pg_fast = ring_fast.encode(coeffs_f), ring_fast.encode(coeffs_g)
        pf_par, pg_par = ring_par.encode(coeffs_f), ring_par.encode(coeffs_g)
        ring_par.mul(pf_par, pg_par)
        fast_s, fast_out = _best_of(lambda: ring_fast.mul(pf_fast, pg_fast), rounds)
        par_s, par_out = _best_of(lambda: ring_par.mul(pf_par, pg_par), rounds)
        if par_out.residues != fast_out.residues:
            raise AssertionError("parallel and fast RNS mul outputs differ")
        values["par.rns_mul.fast_s"] = fast_s
        values["par.rns_mul.par_s"] = par_s
        values["par.rns_mul.speedup"] = fast_s / par_s

        # --- large-batch keys (60-bit r52 modulus, batch 32) -----------
        # The arena/fusion/adaptive sweet spot: per-shard compute is
        # large relative to dispatch, and staging reuses pooled
        # segments. These are the keys a --min-speedup floor gates.
        q60 = find_ntt_prime(60, 2 * NTT_N)
        big = [
            [rng.randrange(q60) for _ in range(NTT_N)]
            for _ in range(LARGE_BATCH)
        ]
        fast_plan = FastNtt(NTT_N, q60)
        par_plan = ParNtt(NTT_N, q60, executor=pool)
        par_plan.forward(big)  # warm caches + adaptive compute history
        fast_s, fast_out = _best_of(lambda: fast_plan.forward(big), rounds)
        par_s, par_out = _best_of(lambda: par_plan.forward(big), rounds)
        if par_out != fast_out:
            raise AssertionError("parallel and fast large-NTT outputs differ")
        values["par.ntt_large.fast_s"] = fast_s
        values["par.ntt_large.par_s"] = par_s
        values["par.ntt_large.speedup"] = fast_s / par_s

        bf = [
            [rng.randrange(q60) for _ in range(NTT_N)]
            for _ in range(LARGE_BATCH)
        ]
        bg = [
            [rng.randrange(q60) for _ in range(NTT_N)]
            for _ in range(LARGE_BATCH)
        ]
        fast_neg = FastNegacyclic(NTT_N, q60)
        par_neg = ParNegacyclic(NTT_N, q60, executor=pool)
        par_neg.multiply(bf, bg)
        fast_s, fast_out = _best_of(lambda: fast_neg.multiply(bf, bg), rounds)
        par_s, par_out = _best_of(lambda: par_neg.multiply(bf, bg), rounds)
        if par_out != fast_out:
            raise AssertionError(
                "parallel and fast large-polymul outputs differ"
            )
        values["par.polymul_large.fast_s"] = fast_s
        values["par.polymul_large.par_s"] = par_s
        values["par.polymul_large.speedup"] = fast_s / par_s

        # --- fused multiply-accumulate vs its unfused form -------------
        # fused: one chain dispatch per shard (product stays resident in
        # the worker); unfused: a multiply batch plus a BLAS add batch —
        # two dispatch round trips and a staged intermediate. The
        # fusion_gain ratio wins on dispatch collapse alone, so it holds
        # even on a single-core host.
        acc = [
            [rng.randrange(q60) for _ in range(NTT_N)]
            for _ in range(LARGE_BATCH)
        ]
        fast_blas = FastBlasPlan(q60)
        par_blas = ParBlasPlan(q60, executor=pool)
        par_neg.multiply_add(bf, bg, acc)
        fast_s, fast_out = _best_of(
            lambda: fast_blas.vector_add(fast_neg.multiply(bf, bg), acc),
            rounds,
        )
        fused_s, fused_out = _best_of(
            lambda: par_neg.multiply_add(bf, bg, acc), rounds
        )
        unfused_s, unfused_out = _best_of(
            lambda: par_blas.vector_add(par_neg.multiply(bf, bg), acc),
            rounds,
        )
        if fused_out != fast_out or unfused_out != fast_out:
            raise AssertionError(
                "fused multiply_add diverged from the fast engine"
            )
        values["par.polymul_add.fast_s"] = fast_s
        values["par.polymul_add.par_s"] = fused_s
        values["par.polymul_add.speedup"] = fast_s / fused_s
        values["par.polymul_add.unfused_par_s"] = unfused_s
        values["par.polymul_add.fusion_gain"] = unfused_s / fused_s

        values["par.stats.retries"] = float(pool.stats["retries"])
        values["par.stats.fallbacks"] = float(pool.stats["fallbacks"])
        values["par.stats.restarts"] = float(pool.stats["restarts"])
        arena = pool.arena.stats
        values["par.arena.reuse_rate"] = (
            arena["reuses"] / arena["leases"] if arena["leases"] else 0.0
        )
    return values


def record(values: dict, snapshot_path=DEFAULT_SNAPSHOT) -> None:
    """Append the measurements to the pool-engine snapshot history."""
    SnapshotStore(snapshot_path).record(values, label="bench_par")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--snapshot", type=Path, default=DEFAULT_SNAPSHOT)
    parser.add_argument(
        "--workers", type=int, default=None, help="pool size (default: cores)"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="enforce a parallel/fast speedup floor on the batched "
        "workloads (only meaningful on a multi-core host)",
    )
    parser.add_argument("--rounds", type=int, default=3)
    args = parser.parse_args(argv)

    values = run(workers=args.workers, rounds=args.rounds)
    record(values, args.snapshot)

    cores = os.cpu_count() or 1
    print(f"host cores: {cores}, pool workers: {values['par.workers']:.0f}")
    for key in (
        "ntt_batch", "polymul_batch", "rns_mul",
        "ntt_large", "polymul_large", "polymul_add",
    ):
        gated = " (gated)" if key in GATED_KEYS else ""
        print(
            f"{key:14s} fast {values[f'par.{key}.fast_s'] * 1e3:8.2f}ms  "
            f"parallel {values[f'par.{key}.par_s'] * 1e3:8.2f}ms  "
            f"speedup {values[f'par.{key}.speedup']:5.2f}x{gated}"
        )
    print(
        f"fusion gain (unfused par / fused par): "
        f"{values['par.polymul_add.fusion_gain']:.2f}x  "
        f"arena reuse {values['par.arena.reuse_rate'] * 100:.0f}%"
    )
    print(
        f"retries {values['par.stats.retries']:.0f}  "
        f"fallbacks {values['par.stats.fallbacks']:.0f}  "
        f"restarts {values['par.stats.restarts']:.0f}"
    )
    print(f"snapshot recorded to {args.snapshot}")

    if values["par.stats.fallbacks"] or values["par.stats.retries"]:
        print("FAIL: shards needed retries or fallbacks", file=sys.stderr)
        return 1
    if args.min_speedup is not None:
        # The floor applies to the large-batch keys only: the small
        # smoke keys measure the dispatch envelope, not the win.
        worst = min(values[f"par.{key}.speedup"] for key in GATED_KEYS)
        if worst < args.min_speedup:
            print(
                f"FAIL: worst large-batch speedup {worst:.2f}x is below "
                f"the {args.min_speedup:.1f}x floor",
                file=sys.stderr,
            )
            return 1
    elif cores == 1:
        print("note: single-core host; speedup recorded but not enforced")
    return 0


def test_parallel_engine_correctness(tmp_path):
    """Pytest form of the CI gate (isolated snapshot file)."""
    values = run(workers=2, rounds=1)
    record(values, tmp_path / "BENCH_par.json")
    assert values["par.stats.fallbacks"] == 0
    assert values["par.stats.retries"] == 0
    for key in (
        "ntt_batch", "polymul_batch", "rns_mul",
        "ntt_large", "polymul_large", "polymul_add",
    ):
        assert values[f"par.{key}.speedup"] > 0
    assert values["par.polymul_add.fusion_gain"] > 0
    assert values["par.arena.reuse_rate"] > 0


if __name__ == "__main__":
    sys.exit(main())
