"""Benchmark: Section 5.5's multiplication-algorithm sensitivity."""

from repro.experiments import karatsuba


def test_karatsuba(report):
    result = report(karatsuba.run)
    for cpu, variant, ratio in zip(
        result.column("CPU"),
        result.column("variant"),
        (float(v) for v in result.column("karatsuba/schoolbook")),
    ):
        if cpu == "amd_epyc_9654" and variant == "scalar":
            assert 0.90 <= ratio <= 1.10  # the paper's stated near-tie
        else:
            assert ratio >= 0.99, (cpu, variant)
