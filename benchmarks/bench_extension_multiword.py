"""Benchmark: the Section 7 bit-width extension (128/192/256-bit NTTs)."""

from repro.experiments import extension_multiword


def test_extension_multiword(report):
    result = report(extension_multiword.run)
    gains = [float(v) for v in result.column("mqx speedup over avx512")]
    # MQX's advantage must grow monotonically with the residue width.
    assert gains == sorted(gains)
    assert gains[-1] > gains[0] * 1.05
    # And every width must still show a solid MQX win.
    assert all(g > 2.0 for g in gains)
