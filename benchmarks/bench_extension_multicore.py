"""Benchmark: multi-core realization of the speed-of-light projection."""

from repro.experiments import extension_multicore


def test_extension_multicore(report):
    result = report(extension_multicore.run)
    by_size_cores = {
        (int(row[0]), int(row[1])): (float(row[2]), row[4])
        for row in result.rows
    }
    # L2-resident size: near-linear on all 192 cores.
    speedup_14, bound_14 = by_size_cores[(14, 192)]
    assert speedup_14 > 150 and bound_14 == "compute"
    # Spilled size: saturates against shared bandwidth well below linear.
    speedup_16, bound_16 = by_size_cores[(16, 192)]
    assert speedup_16 < 100 and bound_16 == "shared-bandwidth"
