"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. **Barrett vs division-based reduction** - why the tuned kernels beat
   the library baselines structurally (Section 2.1).
2. **Carry-elision under the 124-bit bound** - the paper's claim that the
   Barrett width constraint lets "much of the branching logic and
   conditional assignments be eliminated" (Section 3.1), measured as the
   tuned addmod against the verbatim Listing 2 port.
3. **Constant-geometry permutation cost** - what fraction of a Pease NTT
   stage the interleave shuffle costs on each backend.
"""

import random

import pytest

from repro.arith.primes import default_modulus
from repro.baselines.bignum import limbs_from_int, mpn_mul, mpn_tdiv_qr
from repro.isa import scalar as s
from repro.isa.trace import tracing
from repro.isa.types import Vec
from repro.kernels import get_backend
from repro.kernels.listings import listing2_addmod128
from repro.machine.scheduler import schedule_trace
from repro.machine.uops import get_microarch

Q = default_modulus()
RNG = random.Random(0xAB1A7E)


def _scalar_barrett_mulmod_trace():
    backend = get_backend("scalar")
    ctx = backend.make_modulus(Q)
    a = backend.load_block([RNG.randrange(Q)])
    b = backend.load_block([RNG.randrange(Q)])
    with tracing() as t:
        backend.mulmod(a, b, ctx)
    return t


def _scalar_division_mulmod_trace():
    """The division-based alternative: full product + mpn_tdiv_qr."""
    a, b = RNG.randrange(Q), RNG.randrange(Q)
    with tracing() as t:
        product = mpn_mul(limbs_from_int(a, 2), limbs_from_int(b, 2))
        mpn_tdiv_qr(product, limbs_from_int(Q, 2))
    return t


def test_ablation_barrett_vs_division(benchmark):
    """Barrett reduction must clearly beat hardware division per mulmod."""

    def run():
        barrett = _scalar_barrett_mulmod_trace()
        division = _scalar_division_mulmod_trace()
        micro = get_microarch("sunny_cove")
        return (
            schedule_trace(barrett, micro).throughput_cycles(8),
            schedule_trace(division, micro).throughput_cycles(8),
        )

    barrett_cycles, division_cycles = benchmark.pedantic(
        run, rounds=3, iterations=1
    )
    print(
        f"\nscalar mulmod cycles: Barrett {barrett_cycles:.1f} "
        f"vs division {division_cycles:.1f} "
        f"({division_cycles / barrett_cycles:.2f}x)"
    )
    assert division_cycles > 1.5 * barrett_cycles


def test_ablation_carry_elision(benchmark):
    """Tuned addmod (124-bit elisions) vs the verbatim Listing 2 port."""
    backend = get_backend("avx512")
    ctx = backend.make_modulus(Q)
    vals_a = [RNG.randrange(Q) for _ in range(8)]
    vals_b = [RNG.randrange(Q) for _ in range(8)]

    def run():
        a = backend.load_block(vals_a)
        b = backend.load_block(vals_b)
        with tracing() as tuned:
            backend.addmod(a, b, ctx)
        ah, al = a.hi, a.lo
        bh, bl = b.hi, b.lo
        mh, ml = ctx.m.hi, ctx.m.lo
        with tracing() as verbatim:
            listing2_addmod128(ah, al, bh, bl, mh, ml)
        return len(tuned), len(verbatim)

    tuned_count, verbatim_count = benchmark.pedantic(run, rounds=3, iterations=1)
    print(f"\naddmod instructions: tuned {tuned_count} vs Listing 2 {verbatim_count}")
    assert tuned_count < verbatim_count


@pytest.mark.parametrize("name", ["avx2", "avx512", "mqx"])
def test_ablation_permutation_share(benchmark, name):
    """The Pease interleave must stay a modest share of a stage block."""
    backend = get_backend(name)
    ctx = backend.make_modulus(Q)
    vals = [RNG.randrange(Q) for _ in range(backend.lanes)]

    def run():
        a = backend.load_block(vals)
        b = backend.load_block(vals)
        w = backend.load_block(vals)
        with tracing() as full:
            plus, minus = backend.butterfly(a, b, w, ctx)
            backend.interleave(plus, minus)
        with tracing() as shuffle_only:
            backend.interleave(a, b)
        return len(shuffle_only) / len(full)

    share = benchmark.pedantic(run, rounds=3, iterations=1)
    print(f"\n{name}: interleave share of stage block = {share:.1%}")
    assert share < 0.25


def test_ablation_special_prime_vs_barrett(benchmark):
    """Related-work trade-off: pseudo-Mersenne folding vs general Barrett.

    Special primes win on instruction count (the related-work claim) but
    restrict the modulus shape - the reason the paper's general-prime
    Barrett approach is the harder, more broadly applicable target.
    """
    from repro.arith.specialprime import SpecialPrimeKernel, find_pseudo_mersenne

    q_special, c = find_pseudo_mersenne()

    def run():
        ratios = {}
        for name in ("scalar", "avx512", "mqx"):
            backend = get_backend(name)
            kernel = SpecialPrimeKernel(backend, q_special, c)
            ctx = backend.make_modulus(q_special)
            a = kernel.load_block([RNG.randrange(q_special) for _ in range(kernel.ops.lanes)])
            b = kernel.load_block([RNG.randrange(q_special) for _ in range(kernel.ops.lanes)])
            with tracing() as special:
                kernel.mulmod(a, b)
            da = backend.load_block([RNG.randrange(q_special) for _ in range(backend.lanes)])
            db = backend.load_block([RNG.randrange(q_special) for _ in range(backend.lanes)])
            with tracing() as barrett:
                backend.mulmod(da, db, ctx)
            micro = get_microarch("zen4")
            ratios[name] = (
                schedule_trace(barrett, micro).throughput_cycles(8)
                / schedule_trace(special, micro).throughput_cycles(8)
            )
        return ratios

    ratios = benchmark.pedantic(run, rounds=3, iterations=1)
    print(f"\nspecial-prime speedup over Barrett (Zen 4): " +
          ", ".join(f"{k}={v:.2f}x" for k, v in ratios.items()))
    assert all(v > 1.1 for v in ratios.values())
