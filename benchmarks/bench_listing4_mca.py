"""Benchmark: Listing 4 (LLVM-MCA-style resource pressure reports)."""

from repro.experiments import listing4


def test_listing4(report):
    result = report(listing4.run)
    instr = dict(zip(result.column("variant"), result.column("instructions")))
    port = dict(
        zip(result.column("variant"), (float(v) for v in result.column("port bound (cycles)")))
    )
    assert instr["MQX"] * 2 <= instr["AVX-512"]
    assert port["MQX"] < port["AVX-512"]


def test_listing4_report_text(benchmark):
    text = benchmark.pedantic(listing4.reports, rounds=3, iterations=1)
    print()
    print(text)
    assert "Resource pressure by instruction" in text
    assert "vpadcq_zmm" in text and "vpsbbq_zmm" in text
