"""Benchmark: Table 2 (MQX instruction semantics, executed)."""

from repro.experiments import table2


def test_table2(report):
    result = report(table2.run)
    assert len(result.rows) == 3
    instructions = [row[0] for row in result.rows]
    assert any("_mm512_mul_epi64" in i for i in instructions)
    assert any("_mm512_adc_epi64" in i for i in instructions)
    assert any("_mm512_sbb_epi64" in i for i in instructions)
